#include "core/low_bandwidth.h"

#include <cmath>

namespace stagger {

double IntegralDiskWaste(Bandwidth display, Bandwidth disk) {
  STAGGER_CHECK(display.bits_per_sec() > 0 && disk.bits_per_sec() > 0);
  const double disks =
      std::ceil(display.bits_per_sec() / disk.bits_per_sec() - 1e-9);
  return 1.0 - display.bits_per_sec() / (disks * disk.bits_per_sec());
}

Result<LogicalAllocation> AllocateLogical(Bandwidth display, Bandwidth disk,
                                          int32_t logical_per_disk) {
  if (display.bits_per_sec() <= 0) {
    return Status::InvalidArgument("display bandwidth must be positive");
  }
  if (disk.bits_per_sec() <= 0) {
    return Status::InvalidArgument("disk bandwidth must be positive");
  }
  if (logical_per_disk < 1) {
    return Status::InvalidArgument("logical disks per physical must be >= 1");
  }
  const double unit_bw = disk.bits_per_sec() / logical_per_disk;
  LogicalAllocation alloc;
  alloc.units = static_cast<int64_t>(
      std::ceil(display.bits_per_sec() / unit_bw - 1e-9));
  alloc.disks = CeilDiv(alloc.units, logical_per_disk);
  alloc.wasted_fraction =
      1.0 - display.bits_per_sec() / (static_cast<double>(alloc.units) * unit_bw);
  // A lane that shares its disk reads at full rate for units/L of the
  // interval but transmits across the whole interval; the surplus read
  // ahead of transmission must be buffered.  For a lane using u of L
  // units the backlog peaks at (1 - u/L) of the lane's per-interval
  // data.  Whole-disk lanes (u == L) pipeline directly and buffer
  // nothing.
  const int64_t partial_units = alloc.units % logical_per_disk;
  if (partial_units != 0) {
    alloc.buffer_subobject_fraction =
        (1.0 - static_cast<double>(partial_units) / logical_per_disk) *
        (static_cast<double>(partial_units) / static_cast<double>(alloc.units));
  }
  return alloc;
}

}  // namespace stagger
