// Active delivery streams.  A stream is one in-progress display (or one
// materialization pass): `degree` virtual disks each reading one
// fragment of every subobject, outputs synchronized to the latest-
// aligned fragment (Algorithm 1 of Section 3.2.1).

#ifndef STAGGER_CORE_STREAM_H_
#define STAGGER_CORE_STREAM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "storage/media_object.h"
#include "util/units.h"

namespace stagger {

using StreamId = int64_t;
using RequestId = int64_t;
constexpr StreamId kNoStream = -1;

/// \brief Dynamic state of one fragment lane (one virtual disk) of a
/// stream.
struct FragmentLane {
  /// Virtual disk currently assigned to this fragment index; kNoStream
  /// sentinel is never used here — a lane always owns a disk until its
  /// reads complete.
  int32_t vdisk = -1;
  /// Subobjects read so far on this lane (= index of the next read).
  int64_t reads_done = 0;
  /// Stream-local interval at which the next read occurs.  Reads then
  /// proceed every interval; a coalescing migration re-introduces a gap
  /// (the Algorithm 2 "quiet period").
  int64_t next_read_tau = 0;
  /// True once the lane finished all reads and released its disk.
  bool released = false;
};

/// \brief One active display.
struct Stream {
  StreamId id = kNoStream;
  ObjectId object = kInvalidObject;
  int32_t degree = 0;          ///< M_X
  int64_t num_subobjects = 0;  ///< subobjects still to deliver (n)
  int32_t start_disk = 0;      ///< physical disk of the first fragment read
  int64_t admit_interval = 0;  ///< global interval index at admission
  /// Stream-local interval at which output (display) begins: the largest
  /// initial alignment delay among lanes (Algorithm 1's w_offset).
  int64_t delta_max = 0;
  SimTime arrival_time;        ///< request arrival, for latency accounting
  std::vector<FragmentLane> lanes;
  /// Subobjects fully delivered to the display station.
  int64_t delivered = 0;
  /// True when admitted over non-adjacent disks (buffers in use).
  bool fragmented = false;
  /// True when the object's layout carries a per-subobject parity
  /// fragment on the disk after the stripe; enables kReconstruct
  /// degraded reads for this stream.
  bool parity = false;
  /// True when this stream resumes a display that had already delivered
  /// subobjects before a degraded-mode pause; on_started and the
  /// startup-latency sample fired at the original start and must not
  /// repeat.
  bool resumed_mid_display = false;
  /// Fragments currently reserved in the buffer pool by this stream.
  int64_t buffer_reserved = 0;

  std::function<void()> on_completed;
  std::function<void(SimTime)> on_started;
  std::function<void()> on_interrupted;

  /// Local time for global interval `t`.
  int64_t Tau(int64_t t) const { return t - admit_interval; }

  /// Fragments currently held in memory by lane `j`:
  /// reads completed minus subobjects already delivered.
  int64_t BufferedFragments(int32_t j) const {
    const int64_t lead = lanes[static_cast<size_t>(j)].reads_done - delivered;
    return lead > 0 ? lead : 0;
  }

  int64_t TotalBufferedFragments() const {
    int64_t total = 0;
    for (int32_t j = 0; j < degree; ++j) total += BufferedFragments(j);
    return total;
  }
};

}  // namespace stagger

#endif  // STAGGER_CORE_STREAM_H_
