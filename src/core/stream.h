// Active delivery streams.  A stream is one in-progress display (or one
// materialization pass): `degree` virtual disks each reading one
// fragment of every subobject, outputs synchronized to the latest-
// aligned fragment (Algorithm 1 of Section 3.2.1).

#ifndef STAGGER_CORE_STREAM_H_
#define STAGGER_CORE_STREAM_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "storage/media_object.h"
#include "util/check.h"
#include "util/units.h"

namespace stagger {

using StreamId = int64_t;
using RequestId = int64_t;
constexpr StreamId kNoStream = -1;

/// \brief Dynamic state of one fragment lane (one virtual disk) of a
/// stream.
struct FragmentLane {
  /// Sentinel for vdisk: the lane finished all reads and gave its disk
  /// back.
  static constexpr int32_t kReleased = -1;

  /// Subobjects read so far on this lane (= index of the next read).
  int64_t reads_done = 0;
  /// Stream-local interval at which the next read occurs.  Reads then
  /// proceed every interval; a coalescing migration re-introduces a gap
  /// (the Algorithm 2 "quiet period").
  int64_t next_read_tau = 0;
  /// Virtual disk currently assigned to this fragment index, or
  /// kReleased.  The released flag lives in the sign bit rather than a
  /// separate bool so the lane packs into 24 bytes: the advance loop
  /// streams every active lane every interval, making lane size a
  /// direct factor in tick cost.
  int32_t vdisk = kReleased;

  /// True once the lane finished all reads and released its disk.
  bool released() const { return vdisk < 0; }
};

/// \brief Lane storage with inline capacity for the common degrees.
///
/// The advance loop walks every active stream's lanes every interval;
/// a heap-allocated vector puts them one dependent pointer chase (and
/// usually one cache miss) away from the stream header.  Degrees in
/// practice are tiny (Table 3: M = 5), so lanes live inline in the
/// Stream — contiguous with the header the loop just loaded — and only
/// unusually wide streams (degree > kInlineLanes) spill to the heap.
class LaneArray {
 public:
  /// Inline capacity: covers every evaluation degree with slack.
  static constexpr int32_t kInlineLanes = 8;

  LaneArray() = default;
  LaneArray(LaneArray&&) = default;
  LaneArray& operator=(LaneArray&&) = default;
  LaneArray(const LaneArray& other) { CopyFrom(other); }
  LaneArray& operator=(const LaneArray& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Resizes to `n` default-initialized lanes (previous content lost).
  void Assign(int32_t n) {
    STAGGER_DCHECK(n >= 0);
    size_ = n;
    if (n > kInlineLanes) {
      heap_ = std::make_unique<FragmentLane[]>(static_cast<size_t>(n));
    } else {
      heap_.reset();
      for (int32_t i = 0; i < n; ++i) inline_[i] = FragmentLane{};
    }
  }

  void clear() {
    size_ = 0;
    heap_.reset();
  }

  size_t size() const { return static_cast<size_t>(size_); }
  bool empty() const { return size_ == 0; }

  FragmentLane* data() { return heap_ ? heap_.get() : inline_; }
  const FragmentLane* data() const { return heap_ ? heap_.get() : inline_; }

  FragmentLane& operator[](size_t i) {
    STAGGER_DCHECK(i < static_cast<size_t>(size_));
    return data()[i];
  }
  const FragmentLane& operator[](size_t i) const {
    STAGGER_DCHECK(i < static_cast<size_t>(size_));
    return data()[i];
  }

  FragmentLane* begin() { return data(); }
  FragmentLane* end() { return data() + size_; }
  const FragmentLane* begin() const { return data(); }
  const FragmentLane* end() const { return data() + size_; }

 private:
  void CopyFrom(const LaneArray& other) {
    Assign(other.size_);
    const FragmentLane* src = other.data();
    FragmentLane* dst = data();
    for (int32_t i = 0; i < size_; ++i) dst[i] = src[i];
  }

  FragmentLane inline_[kInlineLanes];
  /// Engaged only when size_ > kInlineLanes.
  std::unique_ptr<FragmentLane[]> heap_;
  int32_t size_ = 0;
};

/// \brief One active display.
///
/// Field order is deliberate: everything the per-tick advance loop
/// touches on the healthy path sits in the first cache line, ahead of
/// the admission-time and completion-time fields and the (cold, fat)
/// callbacks.
struct Stream {
  int32_t degree = 0;          ///< M_X
  /// True when admitted over non-adjacent disks (buffers in use).
  bool fragmented = false;
  /// True only for streams admitted contiguously: lanes sit on M
  /// adjacent virtual disks and advance in lockstep (identical
  /// reads_done / next_read_tau), so the tick can reserve the whole
  /// stripe as one bitmap range.  Never set on fragmented admissions —
  /// even fully coalesced ones, whose lanes stay staggered in
  /// reads_done for the life of the stream.
  bool lockstep = false;
  /// True when the object's layout carries a per-subobject parity
  /// fragment on the disk after the stripe; enables kReconstruct
  /// degraded reads for this stream.
  bool parity = false;
  /// True when this stream resumes a display that had already delivered
  /// subobjects before a degraded-mode pause; on_started and the
  /// startup-latency sample fired at the original start and must not
  /// repeat.
  bool resumed_mid_display = false;
  int64_t num_subobjects = 0;  ///< subobjects still to deliver (n)
  int64_t admit_interval = 0;  ///< global interval index at admission
  /// Stream-local interval at which output (display) begins: the largest
  /// initial alignment delay among lanes (Algorithm 1's w_offset).
  int64_t delta_max = 0;
  /// Subobjects fully delivered to the display station.
  int64_t delivered = 0;
  /// Inline for the common degrees: the advance loop reads them in the
  /// lines right behind the header it just fetched.
  LaneArray lanes;

  // --- warm: admission, degraded reads, retirement ---------------------
  StreamId id = kNoStream;
  ObjectId object = kInvalidObject;
  int32_t start_disk = 0;      ///< physical disk of the first fragment read
  SimTime arrival_time;        ///< request arrival, for latency accounting
  /// Fragments currently reserved in the buffer pool by this stream.
  int64_t buffer_reserved = 0;

  std::function<void()> on_completed;
  std::function<void(SimTime)> on_started;
  std::function<void()> on_interrupted;

  /// Local time for global interval `t`.
  int64_t Tau(int64_t t) const { return t - admit_interval; }

  /// Fragments currently held in memory by lane `j`:
  /// reads completed minus subobjects already delivered.
  int64_t BufferedFragments(int32_t j) const {
    const int64_t lead = lanes[static_cast<size_t>(j)].reads_done - delivered;
    return lead > 0 ? lead : 0;
  }

  int64_t TotalBufferedFragments() const {
    int64_t total = 0;
    for (int32_t j = 0; j < degree; ++j) total += BufferedFragments(j);
    return total;
  }
};

}  // namespace stagger

#endif  // STAGGER_CORE_STREAM_H_
