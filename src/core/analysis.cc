#include "core/analysis.h"

#include <cmath>

namespace stagger {

Status SystemModel::Validate() const {
  if (num_disks < 1) return Status::InvalidArgument("model needs disks");
  STAGGER_RETURN_NOT_OK(disk.Validate());
  if (fragment_cylinders < 1) {
    return Status::InvalidArgument("fragment must span >= 1 cylinder");
  }
  if (display_bandwidth.bits_per_sec() <= 0) {
    return Status::InvalidArgument("display bandwidth must be positive");
  }
  if (subobjects_per_object < 1) {
    return Status::InvalidArgument("objects need subobjects");
  }
  if (Degree() > num_disks) {
    return Status::InvalidArgument("degree exceeds the number of disks");
  }
  return Status::OK();
}

int32_t SystemModel::Degree() const {
  return static_cast<int32_t>(
      std::ceil(display_bandwidth.bits_per_sec() /
                    EffectiveDiskBandwidth().bits_per_sec() -
                1e-9));
}

int32_t SystemModel::MaxResidentObjects() const {
  const int64_t total_cylinders =
      static_cast<int64_t>(num_disks) * disk.num_cylinders;
  const int64_t object_cylinders =
      fragment_cylinders * Degree() * subobjects_per_object;
  return static_cast<int32_t>(total_cylinders / object_cylinders);
}

}  // namespace stagger
