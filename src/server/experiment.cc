#include "server/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/vdr_server.h"
#include "core/fast_forward.h"
#include "disk/disk_array.h"
#include "fault/fault_injector.h"
#include "server/striped_server.h"
#include "sim/simulator.h"
#include "storage/catalog.h"
#include "tertiary/tertiary_pool.h"
#include "util/distributions.h"
#include "util/thread_annotations.h"
#include "workload/display_station.h"

namespace stagger {

std::string SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSimpleStriping: return "simple-striping";
    case Scheme::kStaggered: return "staggered-striping";
    case Scheme::kVdr: return "virtual-data-replication";
  }
  return "unknown";
}

Status ExperimentConfig::Validate() const {
  if (num_disks < 1) return Status::InvalidArgument("need at least one disk");
  STAGGER_RETURN_NOT_OK(disk.Validate());
  STAGGER_RETURN_NOT_OK(tertiary.Validate());
  if (fragment_cylinders < 1) {
    return Status::InvalidArgument("fragment must span >= 1 cylinder");
  }
  if (num_objects < 1) return Status::InvalidArgument("need objects");
  if (subobjects_per_object < 1) {
    return Status::InvalidArgument("objects need subobjects");
  }
  if (display_bandwidth.bits_per_sec() <= 0) {
    return Status::InvalidArgument("display bandwidth must be positive");
  }
  if (num_tertiary_devices < 1) {
    return Status::InvalidArgument("need at least one tertiary device");
  }
  if (stations < 1) return Status::InvalidArgument("need stations");
  if (geometric_mean <= 0) {
    return Status::InvalidArgument("geometric mean must be positive");
  }
  if (measure <= SimTime::Zero()) {
    return Status::InvalidArgument("measurement window must be positive");
  }
  if (Degree() > num_disks) {
    return Status::InvalidArgument("degree of declustering exceeds D");
  }
  if (open_arrivals) {
    if (mean_interarrival <= SimTime::Zero()) {
      return Status::InvalidArgument("mean interarrival must be positive");
    }
    if (zipf_theta < 0.0) {
      return Status::InvalidArgument("zipf theta must be >= 0");
    }
    if (scan_probability > 0.0 && scan_speedup < 1) {
      return Status::InvalidArgument("scan speedup must be >= 1");
    }
  }
  if (batch && scheme == Scheme::kVdr) {
    return Status::InvalidArgument(
        "stream batching is a striped-server feature");
  }
  if (scrub && scheme == Scheme::kVdr) {
    return Status::InvalidArgument(
        "stripe scrubbing is a striped-server feature");
  }
  if ((num_shards > 1 || tick_threads > 1 || ring_placement) &&
      scheme == Scheme::kVdr) {
    return Status::InvalidArgument(
        "sharded execution / ring placement are striped-server features");
  }
  if (num_shards > num_disks) {
    return Status::InvalidArgument("num_shards must be <= num_disks");
  }
  return Status::OK();
}

int32_t ExperimentConfig::Degree() const {
  return static_cast<int32_t>(std::ceil(display_bandwidth.bits_per_sec() /
                                            EffectiveDiskBandwidth().bits_per_sec() -
                                        1e-9));
}

Bandwidth ExperimentConfig::EffectiveDiskBandwidth() const {
  // Table 3 gives B_Disk directly as the (effective) transfer rate; the
  // interval is one fragment at that rate, so the two are consistent.
  return disk.transfer_rate;
}

SimTime ExperimentConfig::Interval() const {
  return TransferTime(FragmentSize(), EffectiveDiskBandwidth());
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  STAGGER_RETURN_NOT_OK(config.Validate());

  Simulator sim;
  Catalog catalog = Catalog::Uniform(config.num_objects,
                                     config.subobjects_per_object,
                                     config.display_bandwidth);
  STAGGER_ASSIGN_OR_RETURN(
      DiskArray disks,
      DiskArray::Create(config.num_disks, config.disk, config.num_spares));
  STAGGER_ASSIGN_OR_RETURN(
      std::unique_ptr<TertiaryPool> tertiary_pool,
      TertiaryPool::Create(&sim, TertiaryDevice(config.tertiary),
                           config.num_tertiary_devices));
  MaterializationService& tertiary = *tertiary_pool;
  // Fast-forward scan replicas join the catalog before any server sees
  // it, so server-side per-object state covers them too.
  std::vector<ObjectId> scan_replica;
  if (config.open_arrivals && config.scan_probability > 0.0) {
    STAGGER_ASSIGN_OR_RETURN(
        scan_replica, AddFastForwardReplicas(&catalog, config.scan_speedup));
  }
  STAGGER_ASSIGN_OR_RETURN(
      TruncatedGeometric popularity,
      TruncatedGeometric::FromMean(config.num_objects, config.geometric_mean));
  // The popularity distribution only ever names original objects;
  // replicas are reached through the scan_replica map.
  std::unique_ptr<ZipfDistribution> zipf;
  const DiscreteDistribution* pop = &popularity;
  if (config.open_arrivals && config.zipf_theta > 0.0) {
    STAGGER_ASSIGN_OR_RETURN(
        ZipfDistribution z,
        ZipfDistribution::Create(config.num_objects, config.zipf_theta));
    zipf = std::make_unique<ZipfDistribution>(std::move(z));
    pop = zipf.get();
  }

  std::unique_ptr<StripedServer> striped;
  std::unique_ptr<VdrServer> vdr;
  MediaService* service = nullptr;

  if (config.scheme == Scheme::kVdr) {
    VdrConfig vc;
    vc.num_clusters = config.num_disks / config.Degree();
    vc.cluster_degree = config.Degree();
    vc.interval = config.Interval();
    vc.fragment_size = config.FragmentSize();
    // Whole objects per cluster under the disk capacities.
    const int64_t per_disk_cylinders = config.disk.num_cylinders;
    const int64_t object_cylinders_per_disk =
        config.subobjects_per_object * config.fragment_cylinders;
    vc.objects_per_cluster = static_cast<int32_t>(std::max<int64_t>(
        1, per_disk_cylinders / object_cylinders_per_disk));
    vc.enable_replication = config.enable_replication;
    vc.replication_wait_threshold = config.replication_wait_threshold;
    vc.preload_objects = config.preload_objects;
    // Breadth-first preload (one replica per object, most popular
    // first).  Depth-first alternatives (surplus replicas for hot
    // objects at the cost of library coverage) measurably hurt: a miss
    // costs a multi-thousand-second tertiary fetch, far more than any
    // collision wait.  The run-time replication policy grows replica
    // sets where demand persists.
    STAGGER_ASSIGN_OR_RETURN(vdr,
                             VdrServer::Create(&sim, &catalog, &tertiary, vc));
    service = vdr.get();
  } else {
    StripedConfig sc;
    sc.stride = config.scheme == Scheme::kSimpleStriping ? config.Degree()
                                                         : config.stride;
    sc.interval = config.Interval();
    sc.fragment_size = config.FragmentSize();
    sc.fragment_cylinders = config.fragment_cylinders;
    sc.policy = config.policy;
    sc.coalesce = config.coalesce;
    sc.preload_objects = config.preload_objects;
    sc.charge_materialization_writes = config.charge_materialization_writes;
    sc.tertiary_bandwidth = config.tertiary.bandwidth;
    sc.degraded_policy = config.degraded_policy;
    sc.parity = config.parity;
    sc.rebuild_intervals_per_fragment = config.rebuild_intervals_per_fragment;
    sc.scrub = config.scrub;
    sc.scrub_intervals_per_stripe = config.scrub_intervals_per_stripe;
    sc.rebuild_reads_per_interval = config.rebuild_reads_per_interval;
    sc.scrub_reads_per_interval = config.scrub_reads_per_interval;
    sc.scrub_starvation_floor_intervals =
        config.scrub_starvation_floor_intervals;
    sc.batch = config.batch;
    sc.batch_window = config.batch_window;
    sc.max_batch_fanout = config.max_batch_fanout;
    sc.num_shards = config.num_shards;
    sc.tick_threads = config.tick_threads;
    sc.shard_min_active_streams = config.shard_min_active_streams;
    sc.ring_placement = config.ring_placement;
    sc.ring_seed = config.ring_seed;
    sc.ring_replicas = config.ring_replicas;
    sc.rpc_latency = config.rpc_latency;
    STAGGER_ASSIGN_OR_RETURN(
        striped,
        StripedServer::Create(&sim, &catalog, &disks, &tertiary, sc));
    service = striped.get();
  }

  // Fault injection: the striped scheduler reacts through per-interval
  // disk-health checks; VDR maps disk outages onto cluster failovers
  // via listeners.  A failure loses the cluster's media, a stall does
  // not.
  std::unique_ptr<FaultInjector> injector;
  if (!config.fault_plan.events().empty()) {
    STAGGER_ASSIGN_OR_RETURN(
        injector, FaultInjector::Create(&sim, &disks, config.fault_plan));
    if (config.scheme == Scheme::kVdr) {
      VdrServer* v = vdr.get();
      DiskArray* d = &disks;
      injector->OnDown([v, d](DiskId disk, SimTime) {
        v->OnDiskDown(disk,
                      d->disk(disk).health() == DiskHealth::kFailed);
      });
      injector->OnUp([v](DiskId disk, SimTime) { v->OnDiskUp(disk); });
    } else {
      // The striped scheduler notices outages via per-interval health
      // checks, but the rebuild subsystem needs the failure edge to
      // claim a spare (and the recovery edge to return it).
      StripedServer* s = striped.get();
      injector->OnDown(
          [s](DiskId disk, SimTime now) { s->OnDiskDown(disk, now); });
      injector->OnUp(
          [s](DiskId disk, SimTime now) { s->OnDiskUp(disk, now); });
    }
  }

  std::unique_ptr<StationPool> stations;
  std::unique_ptr<OpenArrivals> arrivals;
  if (config.open_arrivals) {
    OpenArrivalsConfig oc;
    oc.mean_interarrival = config.mean_interarrival;
    oc.seed = config.seed;
    oc.diurnal_amplitude = config.diurnal_amplitude;
    oc.diurnal_period = config.diurnal_period;
    oc.flash_crowds = config.flash_crowds;
    oc.scan_probability = scan_replica.empty() ? 0.0 : config.scan_probability;
    oc.pause_probability = config.pause_probability;
    oc.mean_pause = config.mean_pause;
    oc.scan_replica = std::move(scan_replica);
    oc.measure_start = config.warmup;
    STAGGER_RETURN_NOT_OK(oc.Validate());
    arrivals =
        std::make_unique<OpenArrivals>(&sim, service, pop, std::move(oc));
    arrivals->Start();
  } else {
    stations = std::make_unique<StationPool>(&sim, service, pop,
                                             config.stations, config.seed);
    stations->SetMeasurementWindowStart(config.warmup);
    stations->SetMeanThinkTime(config.mean_think_time);
    stations->Start();
  }
  sim.RunUntil(config.warmup + config.measure);

  ExperimentResult result;
  if (config.open_arrivals) {
    const double window_sec = (sim.Now() - config.warmup).seconds();
    result.displays_completed = arrivals->completed_in_window();
    result.displays_per_hour =
        window_sec > 0.0
            ? static_cast<double>(result.displays_completed) * 3600.0 /
                  window_sec
            : 0.0;
    result.mean_startup_latency_sec = arrivals->startup_latency_sec().mean();
    result.requests_issued = arrivals->requests_issued();
    result.vcr_scans = arrivals->vcr_scans();
    result.vcr_resumes = arrivals->vcr_resumes();
    result.flash_redirects = arrivals->flash_redirects();
    const QuantileTracker& admission = arrivals->admission_latency_sec();
    result.admission_latency_p50_sec = admission.p50();
    result.admission_latency_p95_sec = admission.p95();
    result.admission_latency_p99_sec = admission.p99();
  } else {
    result.displays_per_hour =
        stations->metrics().ThroughputPerHour(config.warmup, sim.Now());
    result.displays_completed =
        stations->metrics().displays_completed_in_window;
    result.mean_startup_latency_sec =
        stations->metrics().startup_latency_sec_in_window.mean();
    result.requests_issued = stations->metrics().requests_issued;
    result.unique_objects_referenced = stations->UniqueObjectsReferenced();
    const QuantileTracker& startup =
        stations->metrics().startup_latency_quantiles_sec;
    result.admission_latency_p50_sec = startup.p50();
    result.admission_latency_p95_sec = startup.p95();
    result.admission_latency_p99_sec = startup.p99();
  }
  result.tertiary_utilization = tertiary.Utilization(sim.Now());
  result.tertiary_queue_end = static_cast<int64_t>(tertiary.queue_length());
  result.materializations = tertiary.completed();

  // Latent-error outcomes live in the disk array and so apply to every
  // scheme: a VDR run with latent events truthfully reports them as
  // injected-but-never-repaired (it has no scrubber).
  {
    const LatentErrorMetrics& lm = disks.latent_errors().metrics();
    result.latent_errors_injected = lm.injected;
    result.latent_errors_detected = lm.detected;
    result.latent_errors_repaired = lm.repaired + lm.repaired_by_rebuild;
    result.latent_errors_unrepaired = disks.latent_errors().ActiveCells();
    result.mean_time_to_repair_sec =
        lm.time_to_repair_intervals.count() > 0
            ? lm.time_to_repair_intervals.mean() * config.Interval().seconds()
            : 0.0;
    result.degraded_disk_intervals = disks.degraded_disk_intervals();
  }

  if (config.scheme == Scheme::kVdr) {
    result.disk_utilization = vdr->MeanClusterUtilization();
    result.replications = vdr->metrics().replications;
    result.evictions = vdr->metrics().evictions;
    result.resident_objects_end = vdr->ResidentObjectCount();
    result.displays_interrupted = vdr->metrics().displays_interrupted;
    result.failovers = vdr->metrics().failovers;
  } else {
    result.disk_utilization = disks.MeanUtilization();
    result.hiccups = striped->scheduler_metrics().hiccups;
    result.evictions = striped->object_manager().evictions();
    result.resident_objects_end = striped->object_manager().ResidentCount();
    const SchedulerMetrics& sm = striped->scheduler_metrics();
    result.degraded_reads = sm.degraded_reads;
    result.reconstructed_reads = sm.reconstructed_reads;
    result.streams_paused = sm.streams_paused;
    result.streams_resumed = sm.streams_resumed;
    result.displays_interrupted = sm.displays_interrupted;
    result.mean_resume_latency_sec = sm.resume_latency_sec.mean();
    result.corrupt_reads_detected = sm.corrupt_reads_detected;
    result.corrupt_frames_delivered = sm.corrupt_frames_delivered;
    if (const RebuildManager* rebuild = striped->rebuild()) {
      result.rebuilds_completed = rebuild->metrics().rebuilds_completed;
      result.fragments_rebuilt = rebuild->metrics().fragments_rebuilt;
    }
    if (const Scrubber* scrubber = striped->scrubber()) {
      result.scrub_stripes_verified = scrubber->metrics().stripes_scrubbed;
      result.scrub_passes = scrubber->metrics().passes_completed;
    }
    if (const BackgroundBudget* budget = striped->background_budget()) {
      result.background_reads_granted = budget->metrics().reads_granted;
      result.background_budget_violations =
          budget->metrics().budget_violations;
    }
    result.sharded_ticks = sm.sharded_ticks;
    if (const Coordinator* coordinator = striped->coordinator()) {
      const Coordinator::Metrics& cm = coordinator->metrics();
      result.ring_placements = cm.placements;
      result.ring_redirects = cm.redirects;
      result.rpc_hops = cm.rpc_hops;
    }
    if (const StreamBatcher* batcher = striped->batcher()) {
      const BatcherMetrics& bm = batcher->metrics();
      result.physical_streams = bm.physical_streams;
      result.window_joins = bm.window_joins;
      result.piggyback_joins = bm.piggyback_joins;
      result.mean_fanout = bm.fanout.mean();
      result.max_start_offset_sec = bm.start_offset_sec.max();
      if (!config.open_arrivals) {
        // Closed-loop runs have no arrival-side tracker; the batcher
        // sees every logical request and records exact latencies.
        result.admission_latency_p50_sec = bm.admission_latency_sec.p50();
        result.admission_latency_p95_sec = bm.admission_latency_sec.p95();
        result.admission_latency_p99_sec = bm.admission_latency_sec.p99();
      }
    }
  }
  return result;
}

namespace {

// Shared state of the RunMany worker pool: the claim cursor and the
// result slots, behind one mutex so clang's -Wthread-safety analysis
// can prove every cross-thread access synchronized.  The lock is taken
// once per claimed configuration and once per finished simulation —
// noise next to the simulation that runs in between — and slots stay
// keyed by configuration index, so the unwrap order (and every
// aggregate built from it) is bit-identical to a serial sweep no
// matter how many threads ran.
class ResultSink {
 public:
  explicit ResultSink(size_t n) {
    runs_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      runs_.emplace_back(Status::Internal("experiment not run"));
    }
  }

  /// Claims the next unstarted configuration index; indices past the
  /// sweep size mean "done".
  size_t Claim() STAGGER_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_++;
  }

  void Store(size_t i, Result<ExperimentResult> run) STAGGER_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    runs_[i] = std::move(run);
  }

  /// Moves the slots out; call only after every worker has joined.
  std::vector<Result<ExperimentResult>> Take() STAGGER_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return std::move(runs_);
  }

 private:
  Mutex mu_;
  size_t next_ STAGGER_GUARDED_BY(mu_) = 0;
  std::vector<Result<ExperimentResult>> runs_ STAGGER_GUARDED_BY(mu_);
};

}  // namespace

Result<std::vector<ExperimentResult>> RunMany(
    const std::vector<ExperimentConfig>& configs, int32_t threads) {
  const size_t n = configs.size();
  ResultSink sink(n);

  const int32_t workers =
      std::min<int32_t>(threads, static_cast<int32_t>(n));
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) sink.Store(i, RunExperiment(configs[i]));
  } else {
    auto worker = [&] {
      for (size_t i = sink.Claim(); i < n; i = sink.Claim()) {
        sink.Store(i, RunExperiment(configs[i]));
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int32_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  std::vector<Result<ExperimentResult>> runs = sink.Take();
  // Report the lowest-indexed failure — what a serial sweep would have
  // hit first — and otherwise unwrap in input order.
  std::vector<ExperimentResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!runs[i].ok()) return runs[i].status();
    results.push_back(*std::move(runs[i]));
  }
  return results;
}

Result<ReplicatedResult> RunReplicated(const ExperimentConfig& config,
                                       int32_t replications,
                                       int32_t threads) {
  if (replications < 1) {
    return Status::InvalidArgument("need at least one replication");
  }
  std::vector<ExperimentConfig> configs(static_cast<size_t>(replications),
                                        config);
  for (int32_t r = 0; r < replications; ++r) {
    configs[static_cast<size_t>(r)].seed =
        config.seed + static_cast<uint64_t>(r);
  }
  STAGGER_ASSIGN_OR_RETURN(std::vector<ExperimentResult> results,
                           RunMany(configs, threads));
  // Accumulate in seed order so the aggregate is bit-identical to a
  // serial sweep no matter how many threads ran the replications.
  ReplicatedResult aggregate;
  aggregate.replications = replications;
  for (const ExperimentResult& result : results) {
    aggregate.displays_per_hour.Add(result.displays_per_hour);
    aggregate.mean_startup_latency_sec.Add(result.mean_startup_latency_sec);
    aggregate.disk_utilization.Add(result.disk_utilization);
  }
  return aggregate;
}

}  // namespace stagger
