// The striping media server: ties the interval scheduler (core), object
// manager (storage), and tertiary manager together behind the
// MediaService interface.  Simple striping is the stride = M
// configuration; any other stride gives general staggered striping.
//
// Request lifecycle:
//   resident object  -> pin -> scheduler admission -> display -> unpin
//   absent object    -> queue behind a single materialization; when the
//                       tertiary finishes, the object lands via the
//                       object manager (evicting LFU victims) and every
//                       waiter is submitted.  If all resident objects
//                       are pinned, the landing retries as pins drain.

#ifndef STAGGER_SERVER_STRIPED_SERVER_H_
#define STAGGER_SERVER_STRIPED_SERVER_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "background/background_budget.h"
#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "node/coordinator.h"
#include "node/shard_pool.h"
#include "rebuild/rebuild_manager.h"
#include "scrub/scrubber.h"
#include "storage/catalog.h"
#include "storage/object_manager.h"
#include "tertiary/tertiary_manager.h"
#include "util/result.h"
#include "workload/batcher.h"
#include "workload/media_service.h"

namespace stagger {

/// \brief Striped-server configuration.
struct StripedConfig {
  int32_t stride = 1;  ///< k; set equal to M for simple striping
  SimTime interval = SimTime::Millis(605);
  DataSize fragment_size = DataSize::MB(1.512);
  int64_t fragment_cylinders = 1;
  AdmissionPolicy policy = AdmissionPolicy::kContiguous;
  bool coalesce = false;
  int64_t fragmented_lookahead = 16;
  int64_t buffer_capacity_fragments = 0;
  bool allow_backfill = true;
  /// Start new objects on multiples of the stride, which makes the
  /// k = M configuration behave exactly like physically clustered
  /// simple striping.
  bool align_start_to_stride = true;
  /// Objects (by id, ascending) made resident before the run starts —
  /// skips the cold-start transient.
  int32_t preload_objects = 0;
  /// Charge the disk-side write load of materializations (Section
  /// 3.2.4): while the tertiary streams an object in, a write stream of
  /// floor(B_Tertiary / B_Disk) disks walks the object's layout through
  /// the regular scheduler.  Off by default (2 of 1000 disks in the
  /// Table 3 system).
  bool charge_materialization_writes = false;
  /// B_Tertiary, used to size the write stream when charging.
  Bandwidth tertiary_bandwidth = Bandwidth::Mbps(40);
  /// Reaction to reads landing on failed or stalled disks (src/fault/);
  /// forwarded to the scheduler together with the backoff knobs below.
  DegradedPolicy degraded_policy = DegradedPolicy::kRemapOrPause;
  int64_t retry_backoff_intervals = 1;
  int64_t max_retry_backoff_intervals = 64;
  int64_t max_pause_intervals = 4096;
  /// Store a per-subobject parity fragment on the disk after each
  /// stripe (fault-tolerance layer): enables kReconstruct degraded
  /// reads and online rebuild, at one extra fragment per stripe of
  /// storage.  Objects whose M_X + 1 exceeds D fall back to
  /// parity-less layouts.
  bool parity = false;
  /// Rebuild rate cap forwarded to RebuildManager: at most one fragment
  /// per failed disk every this many intervals.  Rebuild runs when the
  /// array has hot spares (DiskArray num_spares > 0) and parity is on.
  int64_t rebuild_intervals_per_fragment = 1;
  /// Run the background scrubber (src/scrub/): cycle over resident
  /// stripes on idle bandwidth verifying content words, surfacing and
  /// repairing latent sector errors.  Registered below rebuild priority
  /// on the shared background budget.
  bool scrub = false;
  /// Scrub pacing (ScrubConfig::intervals_per_stripe): at 1 the
  /// scrubber uses whatever idle bandwidth its grant allows; at N > 1
  /// it verifies at most one stripe every N intervals.
  int64_t scrub_intervals_per_stripe = 1;
  /// Per-interval idle-read caps handed to the background budget;
  /// 0 = uncapped (bounded only by measured idle bandwidth).
  int64_t rebuild_reads_per_interval = 0;
  int64_t scrub_reads_per_interval = 0;
  /// Starvation floor: if the scrubber has work but makes no progress
  /// for this many intervals (a rebuild storm is eating every grant),
  /// it is served first once.  0 disables the floor.
  int64_t scrub_starvation_floor_intervals = 64;
  /// Stream batching (workload/batcher.h): requests for the same object
  /// arriving within `batch_window` share one physical stream, so N
  /// stations ride one stripe's bandwidth.  Strictly opt-in: with
  /// `batch` false admission is untouched, and `batch_window` zero is a
  /// proven pass-through (bit-identical schedules either way).
  bool batch = false;
  SimTime batch_window = SimTime::Zero();
  /// Stations per physical stream (0 = unlimited).
  int32_t max_batch_fanout = 0;
  /// Forwarded to SchedulerConfig::read_observer (schedule tracing).
  std::function<void(int64_t, ObjectId, int64_t, int32_t, int32_t)>
      read_observer;
  // --- sharded multi-node simulation (src/node/, DESIGN.md §11) --------
  /// Number of storage-node shards the tick is decomposed into.  Pure
  /// execution knob: any (num_shards, tick_threads) produces results
  /// bit-identical to (1, 1) — pinned by the sharded differential test.
  int32_t num_shards = 1;
  /// Worker threads (including the simulation thread) the sharded tick
  /// fans its per-shard plan tasks across; 1 keeps planning inline.
  int32_t tick_threads = 1;
  /// Forwarded to SchedulerConfig::shard_min_active_streams.
  int64_t shard_min_active_streams = 256;
  /// MODEL knob (changes results, unlike num_shards): place each
  /// landing object's start disk inside the node-group slice its
  /// consistent-hash ring placement picks, instead of the flat
  /// round-robin walk over all D disks.  Layouts still stripe globally.
  bool ring_placement = false;
  uint64_t ring_seed = 0x517a66e7ull;  ///< ring seed (ring_placement only)
  /// Replica-chain length for pickMin placement (ring_placement only).
  int32_t ring_replicas = 2;
  /// MODEL knob: one-way inter-node RPC latency.  Each display request
  /// pays hops * rpc_latency (coordinator -> home shard, +1 hop per
  /// placement redirect) before reaching admission.  Zero is a proven
  /// pass-through; requires ring_placement.
  SimTime rpc_latency = SimTime::Zero();

  Status Validate() const;
};

/// \brief Server-level counters (scheduler metrics live in the
/// scheduler; tertiary metrics in the tertiary manager).
struct StripedMetrics {
  int64_t requests = 0;
  int64_t resident_hits = 0;
  int64_t materializations_started = 0;
  int64_t landings_deferred = 0;  ///< MakeResident retries due to pins
};

/// \brief Staggered/simple striping media server.
class StripedServer : public MediaService {
 public:
  /// All pointees must outlive the server.
  static Result<std::unique_ptr<StripedServer>> Create(
      Simulator* sim, const Catalog* catalog, DiskArray* disks,
      MaterializationService* tertiary, const StripedConfig& config);

  Status RequestDisplay(ObjectId object, StartedFn on_started,
                        CompletedFn on_completed,
                        InterruptedFn on_interrupted = nullptr) override;

  /// Full invariant sweep (core/invariants.h): catalog sanity, the
  /// staggered layout of every resident object, and the scheduler's
  /// per-interval state.  Returns the first violation found.  Invoked
  /// automatically at preload and every landing when STAGGER_AUDIT is on.
  Status AuditInvariants() const;

  /// Fault-injector listeners (fault/fault_injector.h OnDown / OnUp):
  /// a permanent failure starts an online rebuild of the slot's lost
  /// fragments onto a hot spare; a natural recovery cancels it.  No-ops
  /// unless the server owns a rebuild manager (parity on + spares).
  void OnDiskDown(DiskId disk, SimTime now);
  void OnDiskUp(DiskId disk, SimTime now);

  const StripedMetrics& metrics() const { return metrics_; }
  /// Stream batcher, or nullptr when batching is off.
  const StreamBatcher* batcher() const { return batcher_.get(); }
  const SchedulerMetrics& scheduler_metrics() const {
    return scheduler_->metrics();
  }
  const ObjectManager& object_manager() const { return *objects_; }
  IntervalScheduler* scheduler() { return scheduler_.get(); }
  /// Rebuild subsystem, or nullptr when parity/spares are off.
  RebuildManager* rebuild() { return rebuild_.get(); }
  const RebuildManager* rebuild() const { return rebuild_.get(); }
  /// Scrubbing subsystem, or nullptr when `scrub` is off.
  Scrubber* scrubber() { return scrubber_.get(); }
  const Scrubber* scrubber() const { return scrubber_.get(); }
  /// Shared idle-bandwidth arbiter, or nullptr when neither rebuild nor
  /// scrub is configured.
  BackgroundBudget* background_budget() { return budget_.get(); }
  const BackgroundBudget* background_budget() const { return budget_.get(); }
  /// Effective per-disk bandwidth implied by fragment size and interval.
  Bandwidth EffectiveDiskBandwidth() const;
  /// Object->shard router, or nullptr when ring placement is off.
  const Coordinator* coordinator() const { return coordinator_.get(); }
  /// Shard worker pool, or nullptr when the tick runs single-threaded.
  const EpochPool* tick_pool() const { return tick_pool_.get(); }

 private:
  struct Waiter {
    StartedFn on_started;
    CompletedFn on_completed;
    InterruptedFn on_interrupted;
  };

  StripedServer(Simulator* sim, const Catalog* catalog, DiskArray* disks,
                MaterializationService* tertiary, StripedConfig config);

  Status Preload();
  /// Admits one physical display: resident objects go straight to the
  /// scheduler, absent ones queue behind a materialization.  With
  /// batching on this is the batcher's downstream hook and runs once
  /// per physical stream; otherwise RequestDisplay calls it directly.
  void AdmitDisplay(ObjectId object, StartedFn on_started,
                    CompletedFn on_completed, InterruptedFn on_interrupted);
  /// Picks the start disk for a newly landing object: the flat
  /// round-robin walk, or (ring placement) a stride-aligned slot inside
  /// the object's coordinator-chosen node-group slice.
  int32_t NextStartDisk(ObjectId object);
  StaggeredLayout MakeLayout(ObjectId object);
  /// The layout a materializing object will land with (planned at
  /// enqueue so the write stream matches the final placement).
  const StaggeredLayout& PlannedLayout(ObjectId object);
  void SubmitDisplay(ObjectId object, StartedFn on_started,
                     CompletedFn on_completed, InterruptedFn on_interrupted);
  /// Submits the Section 3.2.4 disk-side write stream.
  void SubmitWriteStream(ObjectId object);
  void OnMaterialized(ObjectId object);
  void Land(ObjectId object);
  /// Lands any deferred objects whose space is now reclaimable.
  void RetryLandings();

  /// Every fragment resident objects store on `slot`, parity included —
  /// the rebuild work list for a failed slot.
  std::vector<LostFragment> LostFragmentsOn(DiskId slot) const;
  /// Flattened stripe geometry of every resident object — the
  /// scrubber's work source, re-queried at each pass boundary.
  std::vector<ScrubTarget> ScrubTargets() const;

  Simulator* sim_;
  const Catalog* catalog_;
  DiskArray* disks_;
  MaterializationService* tertiary_;
  StripedConfig config_;
  std::unique_ptr<ObjectManager> objects_;
  std::unique_ptr<IntervalScheduler> scheduler_;
  std::unique_ptr<RebuildManager> rebuild_;
  std::unique_ptr<Scrubber> scrubber_;
  /// Shared idle-bandwidth arbiter; rebuild and scrub both draw from it
  /// (priority rebuild > scrub).  Must outlive neither consumer, so it
  /// is declared after them (destroyed first).
  std::unique_ptr<BackgroundBudget> budget_;
  std::unique_ptr<StreamBatcher> batcher_;
  /// Object->shard router (ring placement mode only).
  std::unique_ptr<Coordinator> coordinator_;
  /// Worker pool behind the scheduler's sharded tick; owned here so it
  /// outlives the scheduler's use and joins before members it reads.
  std::unique_ptr<EpochPool> tick_pool_;
  /// Per-shard placement rotation (ring placement mode only).
  std::vector<int64_t> shard_placement_counter_;
  std::unordered_map<ObjectId, std::vector<Waiter>> waiters_;
  std::vector<char> materializing_;
  std::unordered_map<ObjectId, StaggeredLayout> planned_layouts_;
  std::deque<ObjectId> pending_landings_;
  int64_t placement_counter_ = 0;
  StripedMetrics metrics_;

  friend class StripedServerTestPeer;
};

}  // namespace stagger

#endif  // STAGGER_SERVER_STRIPED_SERVER_H_
