// End-to-end experiment runner for the Section 4 evaluation: builds the
// Table 3 system (disks, tertiary, catalog, server, stations), runs the
// closed workload, and reports throughput and auxiliary statistics.
// Used by the Figure 8 / Table 4 benchmark harnesses and the examples.

#ifndef STAGGER_SERVER_EXPERIMENT_H_
#define STAGGER_SERVER_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/interval_scheduler.h"
#include "disk/disk_parameters.h"
#include "fault/fault_plan.h"
#include "tertiary/tertiary_device.h"
#include "util/result.h"
#include "util/units.h"
#include "workload/open_arrivals.h"

namespace stagger {

/// Which server implementation to run.
enum class Scheme {
  kSimpleStriping,  ///< staggered striping with k = M (Section 4's "simple striping")
  kStaggered,       ///< staggered striping with an arbitrary stride
  kVdr,             ///< virtual data replication baseline
};

std::string SchemeName(Scheme scheme);

/// \brief Full experiment configuration; defaults reproduce Table 3.
struct ExperimentConfig {
  Scheme scheme = Scheme::kSimpleStriping;

  // System (Table 3).
  int32_t num_disks = 1000;                     ///< D
  DiskParameters disk = DiskParameters::Evaluation();
  TertiaryParameters tertiary;                  ///< 40 mbps
  int32_t num_tertiary_devices = 1;             ///< Table 3: 1
  int64_t fragment_cylinders = 1;               ///< fragment = 1 cylinder

  // Database (Table 3).
  int32_t num_objects = 2000;
  int64_t subobjects_per_object = 3000;
  Bandwidth display_bandwidth = Bandwidth::Mbps(100);  ///< => M = 5

  // Scheme parameters.
  int32_t stride = 5;                           ///< k (ignored by VDR)
  AdmissionPolicy policy = AdmissionPolicy::kContiguous;
  bool coalesce = false;
  /// Charge disk-side materialization writes (striped schemes only;
  /// Section 3.2.4).
  bool charge_materialization_writes = false;
  bool enable_replication = true;               ///< VDR only
  int32_t replication_wait_threshold = 1;       ///< VDR only

  // Fault injection (src/fault/); empty plan = all-healthy run.
  FaultPlan fault_plan;
  /// Striped schemes' reaction to reads on unavailable disks; for VDR
  /// the plan is mapped onto cluster failovers instead.
  DegradedPolicy degraded_policy = DegradedPolicy::kRemapOrPause;
  /// Striped schemes: store per-subobject parity fragments (required by
  /// DegradedPolicy::kReconstruct and by online rebuild).
  bool parity = false;
  /// Hot-spare drives beyond the D slots; with parity on, a failed
  /// slot's fragments are rebuilt onto a spare on idle bandwidth.
  int32_t num_spares = 0;
  /// Rebuild rate cap: one fragment per failed slot every this many
  /// intervals.
  int64_t rebuild_intervals_per_fragment = 1;
  /// Striped schemes: run the background scrubber (src/scrub/) that
  /// detects and repairs latent sector errors on idle bandwidth.
  bool scrub = false;
  /// Scrub pacing: at most one stripe every N intervals (1 = as fast as
  /// idle bandwidth allows).
  int64_t scrub_intervals_per_stripe = 1;
  /// Per-interval idle-read caps for the shared background budget;
  /// 0 = uncapped.
  int64_t rebuild_reads_per_interval = 0;
  int64_t scrub_reads_per_interval = 0;
  /// Scrub starvation floor (intervals without progress before the
  /// arbiter serves scrub first once); 0 disables.
  int64_t scrub_starvation_floor_intervals = 64;

  // Workload (Section 4.1).
  int32_t stations = 16;
  double geometric_mean = 10.0;                 ///< 10 / 20 / 43.5
  /// Mean think time between displays (paper: zero, to stress).
  SimTime mean_think_time = SimTime::Zero();
  uint64_t seed = 20240101;

  // Open-arrivals workload (ROADMAP item 5): replaces the closed
  // station pool with a Poisson stream whose rate and popularity vary
  // over time.  See workload/open_arrivals.h for the shape knobs.
  bool open_arrivals = false;
  SimTime mean_interarrival = SimTime::Seconds(30);
  /// Zipf skew for open-arrivals popularity; 0 keeps the paper's
  /// truncated-geometric distribution.
  double zipf_theta = 0.0;
  double diurnal_amplitude = 0.0;
  SimTime diurnal_period = SimTime::Hours(24);
  std::vector<FlashCrowd> flash_crowds;
  /// VCR behavior: scan sessions display the fast-forward replica
  /// (appended to the catalog at `scan_speedup`) before the original;
  /// pause sessions re-request the object after an exponential pause.
  double scan_probability = 0.0;
  int32_t scan_speedup = 16;
  double pause_probability = 0.0;
  SimTime mean_pause = SimTime::Minutes(5);

  // Stream batching (striped schemes only; workload/batcher.h): merge
  // same-object requests inside `batch_window` onto one physical
  // stream.  Off by default — admission is untouched.
  bool batch = false;
  SimTime batch_window = SimTime::Zero();
  int32_t max_batch_fanout = 0;

  // Sharded execution (striped schemes only; src/node/).  num_shards and
  // tick_threads are pure EXECUTION knobs: the per-interval stream walk
  // is planned in parallel across contiguous disk/stream shards and its
  // shared-state effects replayed in serial order, so results are
  // bit-identical to num_shards = tick_threads = 1 by construction.
  int32_t num_shards = 1;
  int32_t tick_threads = 1;
  /// Ticks with fewer active streams than this stay serial (the
  /// journal's constant overhead isn't worth it); <= 0 shards every
  /// eligible tick (differential tests).
  int64_t shard_min_active_streams = 256;
  // ring_placement / ring_seed / ring_replicas / rpc_latency are MODEL
  // knobs (coordinator protocol: request -> consistent-hash shard lookup
  // -> per-shard admission with modeled inter-node RPC hops).  They
  // change placement and timing, and are therefore off by default and
  // deliberately NOT coupled to num_shards.
  bool ring_placement = false;
  uint64_t ring_seed = 0x517a66e7ull;
  int32_t ring_replicas = 2;
  SimTime rpc_latency = SimTime::Zero();

  // Run control.
  SimTime warmup = SimTime::Hours(2);
  SimTime measure = SimTime::Hours(10);
  /// Objects resident at t = 0 (both schemes), to shorten the cold
  /// start; the paper's steady state is reached either way.
  int32_t preload_objects = 200;

  Status Validate() const;

  /// M = ceil(B_Display / B_Disk) under the effective disk bandwidth.
  int32_t Degree() const;
  /// Effective per-disk bandwidth: fragment bits / interval seconds.
  Bandwidth EffectiveDiskBandwidth() const;
  /// S(C_i): one fragment transfer at the effective rate.
  SimTime Interval() const;
  DataSize FragmentSize() const {
    return disk.cylinder_capacity * fragment_cylinders;
  }
};

/// \brief Scalars reported by one run.
struct ExperimentResult {
  double displays_per_hour = 0.0;
  int64_t displays_completed = 0;   ///< inside the measurement window
  double mean_startup_latency_sec = 0.0;
  double disk_utilization = 0.0;    ///< striping: mean disk; VDR: mean cluster
  double tertiary_utilization = 0.0;
  int64_t tertiary_queue_end = 0;
  int64_t materializations = 0;
  int64_t replications = 0;         ///< VDR only
  int64_t evictions = 0;
  int64_t hiccups = 0;              ///< striping only; must be zero
  int64_t unique_objects_referenced = 0;
  int32_t resident_objects_end = 0;
  // --- degraded-mode outcomes (zero on all-healthy runs) ---------------
  int64_t degraded_reads = 0;          ///< striping: remapped fragment reads
  int64_t reconstructed_reads = 0;     ///< striping: parity reconstructions
  int64_t streams_paused = 0;          ///< striping: pauses forced by faults
  int64_t streams_resumed = 0;         ///< striping: successful re-admissions
  int64_t displays_interrupted = 0;    ///< both schemes: displays cut short
  int64_t failovers = 0;               ///< VDR: displays moved to a replica
  double mean_resume_latency_sec = 0;  ///< striping: pause -> re-admission
  // --- rebuild outcomes (parity + spares only) -------------------------
  int64_t rebuilds_completed = 0;      ///< spares promoted into failed slots
  int64_t fragments_rebuilt = 0;
  // --- latent-error / scrub outcomes (zero without kLatentError events) -
  int64_t latent_errors_injected = 0;  ///< corrupt media cells created
  int64_t latent_errors_detected = 0;  ///< first detections (scrub or read)
  int64_t latent_errors_repaired = 0;  ///< cells repaired (all paths)
  /// Cells still corrupt at the end of the run — the scrub-off
  /// signature (latent errors sit undetected forever).
  int64_t latent_errors_unrepaired = 0;
  /// Mean injected-to-repaired time of repaired cells, in seconds
  /// (MTTR of the latent-error population); 0 when nothing was
  /// repaired.
  double mean_time_to_repair_sec = 0.0;
  /// Display reads that hit a corrupt cell and were caught by the
  /// checksum (served via the degraded ladder instead).
  int64_t corrupt_reads_detected = 0;
  /// Corrupt fragments shipped to viewers (possible only under
  /// DegradedPolicy::kNone; fault-aware runs must report zero).
  int64_t corrupt_frames_delivered = 0;
  int64_t scrub_stripes_verified = 0;
  int64_t scrub_passes = 0;
  /// Intervals (summed over disks) a disk spent in the degraded state.
  int64_t degraded_disk_intervals = 0;
  // --- background-budget outcomes (rebuild or scrub on) ----------------
  int64_t background_reads_granted = 0;
  /// Intervals where consumers' reads exceeded the measured idle
  /// capacity.  Any non-zero value is an arbiter bug.
  int64_t background_budget_violations = 0;
  // --- admission latency (exact percentiles; open-arrivals and closed
  // runs report the measurement window, except closed *batched* runs
  // where the batcher's whole-run tracker wins) -------------------------
  double admission_latency_p50_sec = 0.0;
  double admission_latency_p95_sec = 0.0;
  double admission_latency_p99_sec = 0.0;
  // --- open-arrivals workload counters ---------------------------------
  int64_t requests_issued = 0;         ///< logical display requests
  int64_t vcr_scans = 0;
  int64_t vcr_resumes = 0;
  int64_t flash_redirects = 0;
  // --- batching outcomes (batch on only) -------------------------------
  int64_t physical_streams = 0;        ///< streams submitted to the scheduler
  int64_t window_joins = 0;
  int64_t piggyback_joins = 0;
  double mean_fanout = 0.0;            ///< stations per physical stream
  double max_start_offset_sec = 0.0;   ///< piggyback bound: <= batch window
  // --- sharded-execution / coordinator outcomes (zero when off) --------
  int64_t sharded_ticks = 0;           ///< intervals run via the parallel plan
  int64_t ring_placements = 0;         ///< coordinator-placed objects
  int64_t ring_redirects = 0;          ///< placements routed past a full shard
  int64_t rpc_hops = 0;                ///< total modeled coordinator hops
};

/// Runs one experiment to completion (warmup + measurement).
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

/// Runs every configuration to completion, up to `threads` at a time,
/// and returns the results in input order.  Each run is a fully
/// isolated simulation (its own Simulator, disk array, catalog, and
/// workload generator share nothing), so the result of a configuration
/// is bit-identical whatever the thread count — parallelism only
/// reorders wall-clock execution, never simulated events.  threads <= 1
/// (or a single configuration) runs serially on the caller's thread.
/// When runs fail, the error of the lowest-indexed failing run is
/// returned, matching what a serial sweep would have reported first.
Result<std::vector<ExperimentResult>> RunMany(
    const std::vector<ExperimentConfig>& configs, int32_t threads = 1);

/// \brief Aggregate over independent replications (seeds seed+0..n-1).
struct ReplicatedResult {
  int32_t replications = 0;
  StreamingStats displays_per_hour;
  StreamingStats mean_startup_latency_sec;
  StreamingStats disk_utilization;
};

/// Runs `replications` independent copies of the experiment, varying
/// only the workload seed, and reports across-run statistics — for
/// confidence intervals on Figure 8 points.  `threads` runs
/// replications concurrently via RunMany; the aggregate is accumulated
/// in seed order regardless, so the statistics are bit-identical to a
/// serial sweep.
Result<ReplicatedResult> RunReplicated(const ExperimentConfig& config,
                                       int32_t replications,
                                       int32_t threads = 1);

}  // namespace stagger

#endif  // STAGGER_SERVER_EXPERIMENT_H_
