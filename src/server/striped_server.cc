#include "server/striped_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/invariants.h"
#include "util/check.h"

namespace stagger {

Status StripedConfig::Validate() const {
  if (stride < 1) return Status::InvalidArgument("stride must be >= 1");
  if (interval <= SimTime::Zero()) {
    return Status::InvalidArgument("interval must be positive");
  }
  if (fragment_size.bytes() <= 0) {
    return Status::InvalidArgument("fragment size must be positive");
  }
  if (fragment_cylinders < 1) {
    return Status::InvalidArgument("fragment must span >= 1 cylinder");
  }
  if (preload_objects < 0) {
    return Status::InvalidArgument("preload count must be >= 0");
  }
  if (policy == AdmissionPolicy::kFragmented && fragmented_lookahead <= 0) {
    // Lookahead zero degenerates kFragmented to contiguous admission
    // while still paying Algorithm 1's bookkeeping; reject the
    // misconfiguration instead of silently running it.
    return Status::InvalidArgument(
        "fragmented admission requires a positive lookahead");
  }
  if (coalesce) {
    if (policy != AdmissionPolicy::kFragmented) {
      return Status::InvalidArgument(
          "coalescing (Algorithm 2) requires the fragmented policy");
    }
    // A coalescing lane buffers up to delta_max <= lookahead fragments
    // while it drains; a bounded pool smaller than that can never hold
    // one migrated lane's lead, so migrations would never be admitted.
    if (buffer_capacity_fragments > 0 &&
        buffer_capacity_fragments < fragmented_lookahead) {
      return Status::InvalidArgument(
          "coalescing needs a buffer pool of at least one lookahead's "
          "worth of fragments (or an unlimited pool)");
    }
  }
  if (retry_backoff_intervals < 1) {
    return Status::InvalidArgument("retry backoff must be >= 1 interval");
  }
  if (max_retry_backoff_intervals < retry_backoff_intervals) {
    return Status::InvalidArgument(
        "max retry backoff must be >= the initial backoff");
  }
  if (rebuild_intervals_per_fragment < 1) {
    return Status::InvalidArgument(
        "rebuild rate cap must be >= 1 interval per fragment");
  }
  if (scrub_intervals_per_stripe < 1) {
    return Status::InvalidArgument(
        "scrub rate must be >= 1 interval per stripe");
  }
  if (rebuild_reads_per_interval < 0 || scrub_reads_per_interval < 0) {
    return Status::InvalidArgument(
        "background read caps must be >= 0 (0 = uncapped)");
  }
  if (scrub_starvation_floor_intervals < 0) {
    return Status::InvalidArgument(
        "scrub starvation floor must be >= 0 (0 = disabled)");
  }
  if (degraded_policy == DegradedPolicy::kReconstruct && !parity) {
    return Status::InvalidArgument(
        "kReconstruct requires parity layouts to reconstruct from");
  }
  if (!batch && (batch_window != SimTime::Zero() || max_batch_fanout != 0)) {
    return Status::InvalidArgument(
        "batch window / fanout knobs require batching to be enabled");
  }
  if (batch && batch_window < SimTime::Zero()) {
    return Status::InvalidArgument("batch window must be >= 0");
  }
  if (batch && max_batch_fanout < 0) {
    return Status::InvalidArgument("max batch fanout must be >= 0");
  }
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (tick_threads < 1) {
    return Status::InvalidArgument("tick_threads must be >= 1");
  }
  if (ring_replicas < 1) {
    return Status::InvalidArgument("ring_replicas must be >= 1");
  }
  if (rpc_latency < SimTime::Zero()) {
    return Status::InvalidArgument("rpc_latency must be >= 0");
  }
  if (rpc_latency > SimTime::Zero() && !ring_placement) {
    // Without the coordinator there is no route, hence no hop count to
    // multiply the latency by; reject the half-configured state instead
    // of silently ignoring the knob.
    return Status::InvalidArgument(
        "rpc_latency requires ring_placement (the coordinator supplies "
        "the hop count)");
  }
  return Status::OK();
}

Result<std::unique_ptr<StripedServer>> StripedServer::Create(
    Simulator* sim, const Catalog* catalog, DiskArray* disks,
    MaterializationService* tertiary, const StripedConfig& config) {
  STAGGER_RETURN_NOT_OK(config.Validate());
  if (config.stride > disks->num_disks()) {
    return Status::InvalidArgument("stride exceeds the number of disks");
  }
  auto server = std::unique_ptr<StripedServer>(
      new StripedServer(sim, catalog, disks, tertiary, config));

  SchedulerConfig sched;
  sched.stride = config.stride;
  sched.interval = config.interval;
  sched.policy = config.policy;
  sched.coalesce = config.coalesce;
  sched.fragmented_lookahead = config.fragmented_lookahead;
  sched.buffer_capacity_fragments = config.buffer_capacity_fragments;
  sched.allow_backfill = config.allow_backfill;
  sched.degraded_policy = config.degraded_policy;
  sched.retry_backoff_intervals = config.retry_backoff_intervals;
  sched.max_retry_backoff_intervals = config.max_retry_backoff_intervals;
  sched.max_pause_intervals = config.max_pause_intervals;
  sched.read_observer = config.read_observer;
  sched.num_shards = config.num_shards;
  sched.shard_min_active_streams = config.shard_min_active_streams;
  STAGGER_ASSIGN_OR_RETURN(server->scheduler_,
                           IntervalScheduler::Create(sim, disks, sched));
  if (config.num_shards > 1 && config.tick_threads > 1) {
    // Worker threads only pay off when there is more than one shard to
    // plan in parallel; a single-shard config keeps the serial walk and
    // spawns nothing.
    server->tick_pool_ = std::make_unique<EpochPool>(config.tick_threads);
    server->scheduler_->SetShardExecutor(server->tick_pool_.get());
  }
  if (config.ring_placement) {
    CoordinatorConfig cc;
    cc.num_shards = config.num_shards;
    cc.ring_seed = config.ring_seed;
    cc.ring_replicas = config.ring_replicas;
    server->coordinator_ =
        std::make_unique<Coordinator>(cc, disks->num_disks());
    // Placement rotates independently inside each shard's slice so the
    // staggered start-disk spread survives the coordinator routing.
    server->shard_placement_counter_.assign(
        static_cast<size_t>(config.num_shards), 0);
  }
  const bool want_rebuild = config.parity && disks->num_spares() > 0;
  if (want_rebuild || config.scrub) {
    // Both idle-bandwidth consumers draw from one shared budget; the
    // arbiter serves rebuild (priority 0) before scrub (priority 1)
    // and is the scheduler's single idle hook.
    server->budget_ = std::make_unique<BackgroundBudget>(disks);
    if (want_rebuild) {
      RebuildConfig rc;
      rc.rebuild_intervals_per_fragment = config.rebuild_intervals_per_fragment;
      STAGGER_ASSIGN_OR_RETURN(server->rebuild_,
                               RebuildManager::Create(disks, rc));
      BackgroundConsumerConfig bcc;
      bcc.priority = 0;
      bcc.max_reads_per_interval = config.rebuild_reads_per_interval;
      server->budget_->Register(server->rebuild_.get(), bcc);
    }
    if (config.scrub) {
      ScrubConfig sc;
      sc.intervals_per_stripe = config.scrub_intervals_per_stripe;
      StripedServer* s = server.get();
      STAGGER_ASSIGN_OR_RETURN(
          server->scrubber_,
          Scrubber::Create(disks, sc, [s] { return s->ScrubTargets(); }));
      BackgroundConsumerConfig bcc;
      bcc.priority = 1;
      bcc.max_reads_per_interval = config.scrub_reads_per_interval;
      bcc.starvation_floor_intervals = config.scrub_starvation_floor_intervals;
      server->budget_->Register(server->scrubber_.get(), bcc);
    }
    if (config.num_shards > 1) {
      // Per-node-group accounting: the arbiter tallies every grant read
      // against the shard slice owning the slot, and its audit pins the
      // tallies to partition the single global read counter exactly (no
      // double-charging across shards).
      ShardMap map(disks->num_disks(), config.num_shards);
      std::vector<DiskId> starts;
      starts.reserve(static_cast<size_t>(config.num_shards));
      for (int32_t s = 0; s < config.num_shards; ++s) {
        starts.push_back(map.RangeBegin(s));
      }
      server->budget_->SetShardBoundaries(std::move(starts));
    }
    BackgroundBudget* budget = server->budget_.get();
    server->scheduler_->SetIdleBandwidthHook(
        [budget](int64_t interval) { budget->OnIdleInterval(interval); });
  }
  if (config.batch) {
    BatcherConfig bc;
    bc.window = config.batch_window;
    bc.max_fanout = config.max_batch_fanout;
    StripedServer* s = server.get();
    server->batcher_ = std::make_unique<StreamBatcher>(
        sim, bc,
        [s](ObjectId object, MediaService::StartedFn on_started,
            MediaService::CompletedFn on_completed,
            MediaService::InterruptedFn on_interrupted) {
          s->AdmitDisplay(object, std::move(on_started),
                          std::move(on_completed), std::move(on_interrupted));
        });
  }
  STAGGER_RETURN_NOT_OK(server->Preload());
  return server;
}

StripedServer::StripedServer(Simulator* sim, const Catalog* catalog,
                             DiskArray* disks, MaterializationService* tertiary,
                             StripedConfig config)
    : sim_(sim), catalog_(catalog), disks_(disks), tertiary_(tertiary),
      config_(config),
      objects_(std::make_unique<ObjectManager>(catalog, disks,
                                               config.fragment_cylinders)),
      materializing_(static_cast<size_t>(catalog->size()), 0) {}

Bandwidth StripedServer::EffectiveDiskBandwidth() const {
  return Bandwidth::BitsPerSec(config_.fragment_size.bits() /
                               config_.interval.seconds());
}

Status StripedServer::Preload() {
  const int32_t count =
      std::min(config_.preload_objects, catalog_->size());
  for (ObjectId id = 0; id < count; ++id) {
    Status st = objects_->MakeResident(id, MakeLayout(id));
    if (st.IsResourceExhausted()) break;  // disk farm is full
    STAGGER_RETURN_NOT_OK(st);
  }
#ifdef STAGGER_AUDIT
  STAGGER_RETURN_NOT_OK(AuditInvariants());
#endif
  return Status::OK();
}

Status StripedServer::AuditInvariants() const {
  STAGGER_RETURN_NOT_OK(InvariantAuditor::AuditCatalog(
      *catalog_, EffectiveDiskBandwidth(), disks_->num_disks()));
  for (ObjectId id = 0; id < catalog_->size(); ++id) {
    if (!objects_->IsResident(id)) continue;
    STAGGER_RETURN_NOT_OK(InvariantAuditor::AuditLayout(
        objects_->LayoutOf(id), catalog_->Get(id).num_subobjects));
  }
  if (rebuild_) STAGGER_RETURN_NOT_OK(rebuild_->AuditState());
  if (scrubber_) STAGGER_RETURN_NOT_OK(scrubber_->AuditState());
  if (budget_) STAGGER_RETURN_NOT_OK(budget_->AuditState());
  return InvariantAuditor::AuditScheduler(*scheduler_);
}

std::vector<LostFragment> StripedServer::LostFragmentsOn(DiskId slot) const {
  std::vector<LostFragment> lost;
  for (ObjectId id = 0; id < catalog_->size(); ++id) {
    if (!objects_->IsResident(id)) continue;
    const StaggeredLayout& layout = objects_->LayoutOf(id);
    const int64_t n = catalog_->Get(id).num_subobjects;
    for (int64_t i = 0; i < n; ++i) {
      for (int32_t j = 0; j < layout.degree(); ++j) {
        if (layout.DiskFor(i, j) != slot) continue;
        lost.push_back(LostFragment{id, i, j, layout.FirstDiskFor(i),
                                    layout.degree()});
      }
      if (layout.has_parity() && layout.ParityDiskFor(i) == slot) {
        lost.push_back(LostFragment{id, i, layout.degree(),
                                    layout.FirstDiskFor(i), layout.degree()});
      }
    }
  }
  return lost;
}

std::vector<ScrubTarget> StripedServer::ScrubTargets() const {
  std::vector<ScrubTarget> targets;
  for (ObjectId id = 0; id < catalog_->size(); ++id) {
    if (!objects_->IsResident(id)) continue;
    const StaggeredLayout& layout = objects_->LayoutOf(id);
    ScrubTarget t;
    t.object = id;
    t.num_subobjects = catalog_->Get(id).num_subobjects;
    t.degree = layout.degree();
    t.first_disk = layout.FirstDiskFor(0);
    t.stride = layout.stride();
    t.parity = layout.has_parity();
    targets.push_back(t);
  }
  return targets;
}

void StripedServer::OnDiskDown(DiskId disk, SimTime /*now*/) {
  if (!rebuild_) return;
  // A stall on a rebuild *source* disk pauses the affected jobs at
  // their current stripe cursor (they resume in OnDiskUp); this must
  // run before the health filter below, which only admits failures.
  rebuild_->OnSourceDown(disk, disks_->disk(disk).health());
  // Stalls recover by themselves; only a permanent failure is worth a
  // spare.  A slot already rebuilding keeps its job.
  if (disks_->disk(disk).health() != DiskHealth::kFailed) return;
  if (rebuild_->rebuilding(disk)) return;
  Status st = rebuild_->StartRebuild(disk, LostFragmentsOn(disk));
  // An exhausted spare pool leaves the slot to the degraded-read path.
  STAGGER_CHECK(st.ok() || st.IsResourceExhausted()) << st.ToString();
}

void StripedServer::OnDiskUp(DiskId disk, SimTime /*now*/) {
  if (!rebuild_) return;
  rebuild_->OnSourceUp(disk);
  // The original drive came back before the rebuild finished: abandon
  // the job and return the spare.  After a promotion the slot is no
  // longer rebuilding, so a late plan `recover` event lands here as a
  // no-op.
  if (rebuild_->rebuilding(disk)) {
    STAGGER_CHECK_OK(rebuild_->CancelRebuild(disk));
  }
}

int32_t StripedServer::NextStartDisk(ObjectId object) {
  const int64_t d = disks_->num_disks();
  const int64_t step = config_.align_start_to_stride
                           ? static_cast<int64_t>(config_.stride)
                           : 1;
  if (coordinator_ != nullptr) {
    // Ring placement constrains only the START disk to the home shard's
    // slice; the layout itself still stripes across all D disks, so the
    // paper's aggregate-bandwidth guarantee is untouched.  Rotation is
    // per shard so each slice keeps the staggered spread.
    const Coordinator::Route route = coordinator_->PlaceObject(object);
    const ShardMap& map = coordinator_->shard_map();
    const int64_t begin = map.RangeBegin(route.shard);
    const int64_t size = map.RangeSize(route.shard);
    const int64_t first_slot = (begin + step - 1) / step;
    const int64_t last_slot = (begin + size - 1) / step;
    const int64_t slots = last_slot - first_slot + 1;
    if (slots >= 1) {
      const int64_t k = shard_placement_counter_[
          static_cast<size_t>(route.shard)]++;
      const int64_t slot = first_slot + (k * 7919) % slots;
      return static_cast<int32_t>(slot * step);
    }
    // A slice narrower than one stride holds no aligned slot; fall
    // through to the global rotation rather than misalign the start.
  }
  // Deterministic rotation; the multiplier spreads consecutive objects
  // far apart so concurrent displays rarely start on the same disks.
  const int64_t slots = d / step;
  const int64_t slot = (placement_counter_++ * 7919) % slots;
  return static_cast<int32_t>(slot * step);
}

StaggeredLayout StripedServer::MakeLayout(ObjectId object) {
  const MediaObject& obj = catalog_->Get(object);
  const int32_t degree = obj.DegreeOfDeclustering(EffectiveDiskBandwidth());
  // Parity needs a disk disjoint from the stripe; a full-width object
  // (M = D) falls back to a parity-less layout.
  const bool parity = config_.parity && degree + 1 <= disks_->num_disks();
  auto layout = StaggeredLayout::Create(disks_->num_disks(),
                                        NextStartDisk(object),
                                        config_.stride, degree, parity);
  STAGGER_CHECK(layout.ok()) << layout.status().ToString();
  return *std::move(layout);
}

Status StripedServer::RequestDisplay(ObjectId object, StartedFn on_started,
                                     CompletedFn on_completed,
                                     InterruptedFn on_interrupted) {
  if (!catalog_->Contains(object)) {
    return Status::NotFound("object " + std::to_string(object) +
                            " not in catalog");
  }
  ++metrics_.requests;
  objects_->RecordAccess(object);

  if (coordinator_ != nullptr && config_.rpc_latency > SimTime::Zero()) {
    // Model the coordinator round trip: request -> shard lookup ->
    // per-shard admission, one latency unit per hop (a redirect to a
    // replica shard adds a hop).  Zero latency is a proven pass-through
    // (rejected by Validate), so this branch is the only place the
    // deferral exists.
    const Coordinator::Route route = coordinator_->PlaceObject(object);
    const SimTime delay = config_.rpc_latency * route.hops;
    auto started = std::make_shared<StartedFn>(std::move(on_started));
    auto completed = std::make_shared<CompletedFn>(std::move(on_completed));
    auto interrupted =
        std::make_shared<InterruptedFn>(std::move(on_interrupted));
    sim_->ScheduleAfter(delay, [this, object, started, completed,
                                interrupted] {
      if (batcher_) {
        batcher_->Request(object, std::move(*started), std::move(*completed),
                          std::move(*interrupted));
        return;
      }
      AdmitDisplay(object, std::move(*started), std::move(*completed),
                   std::move(*interrupted));
    });
    return Status::OK();
  }

  if (batcher_) {
    // The batcher merges same-object requests inside the admission
    // window and calls AdmitDisplay once per physical stream.
    batcher_->Request(object, std::move(on_started), std::move(on_completed),
                      std::move(on_interrupted));
    return Status::OK();
  }
  AdmitDisplay(object, std::move(on_started), std::move(on_completed),
               std::move(on_interrupted));
  return Status::OK();
}

void StripedServer::AdmitDisplay(ObjectId object, StartedFn on_started,
                                 CompletedFn on_completed,
                                 InterruptedFn on_interrupted) {
  if (objects_->IsResident(object)) {
    ++metrics_.resident_hits;
    SubmitDisplay(object, std::move(on_started), std::move(on_completed),
                  std::move(on_interrupted));
    return;
  }

  waiters_[object].push_back(Waiter{std::move(on_started),
                                    std::move(on_completed),
                                    std::move(on_interrupted)});
  if (!materializing_[static_cast<size_t>(object)]) {
    materializing_[static_cast<size_t>(object)] = 1;
    ++metrics_.materializations_started;
    const MediaObject& obj = catalog_->Get(object);
    const DataSize size =
        config_.fragment_size *
        obj.NumFragments(EffectiveDiskBandwidth());
    TertiaryManager::ServiceStartFn on_start;
    if (config_.charge_materialization_writes) {
      on_start = [this](ObjectId started, SimTime) {
        SubmitWriteStream(started);
      };
    }
    tertiary_->Enqueue(object, size,
                       [this](ObjectId done) { OnMaterialized(done); },
                       std::move(on_start));
  }
}

const StaggeredLayout& StripedServer::PlannedLayout(ObjectId object) {
  auto it = planned_layouts_.find(object);
  if (it == planned_layouts_.end()) {
    it = planned_layouts_.emplace(object, MakeLayout(object)).first;
  }
  return it->second;
}

void StripedServer::SubmitWriteStream(ObjectId object) {
  // One stream of floor(B_Tertiary / B_Disk) disks walks the object's
  // planned layout for the whole transfer, charging the exact aggregate
  // write load (n * M fragment-writes).
  const MediaObject& obj = catalog_->Get(object);
  const StaggeredLayout& layout = PlannedLayout(object);
  const int32_t width = std::max<int32_t>(
      1, std::min<int32_t>(
             disks_->num_disks(),
             static_cast<int32_t>(config_.tertiary_bandwidth.bits_per_sec() /
                                  EffectiveDiskBandwidth().bits_per_sec())));
  DisplayRequest pass;
  pass.object = object;
  pass.degree = width;
  pass.start_disk = layout.start_disk();
  pass.num_subobjects =
      CeilDiv(obj.NumFragments(EffectiveDiskBandwidth()), width);
  pass.on_completed = [] {};
  auto id = scheduler_->Submit(std::move(pass));
  STAGGER_CHECK(id.ok()) << id.status();
}

void StripedServer::SubmitDisplay(ObjectId object, StartedFn on_started,
                                  CompletedFn on_completed,
                                  InterruptedFn on_interrupted) {
  const StaggeredLayout& layout = objects_->LayoutOf(object);
  const MediaObject& obj = catalog_->Get(object);
  objects_->Pin(object);

  DisplayRequest req;
  req.object = object;
  req.start_disk = layout.FirstDiskFor(0);
  req.degree = layout.degree();
  req.num_subobjects = obj.num_subobjects;
  req.parity = layout.has_parity();
  req.on_started = std::move(on_started);
  req.on_completed = [this, object, done = std::move(on_completed)] {
    objects_->Unpin(object);
    if (done) done();
    RetryLandings();
  };
  // An abandoned display must release its pin too, or the object could
  // never be evicted and deferred landings would wedge.
  req.on_interrupted = [this, object, gave_up = std::move(on_interrupted)] {
    objects_->Unpin(object);
    if (gave_up) gave_up();
    RetryLandings();
  };
  Result<RequestId> id = scheduler_->Submit(std::move(req));
  STAGGER_CHECK(id.ok()) << id.status().ToString();
}

void StripedServer::OnMaterialized(ObjectId object) {
  Status st = objects_->MakeResident(object, PlannedLayout(object));
  if (st.IsResourceExhausted()) {
    // Every resident object is pinned; land when a display finishes.
    ++metrics_.landings_deferred;
    pending_landings_.push_back(object);
    return;
  }
  STAGGER_CHECK(st.ok()) << st.ToString();
  Land(object);
}

void StripedServer::Land(ObjectId object) {
#ifdef STAGGER_AUDIT
  // Every landing re-verifies the placement the object came to rest
  // with: contiguity, stride progression, and gcd skew bounds.
  STAGGER_CHECK_OK(InvariantAuditor::AuditLayout(
      objects_->LayoutOf(object), catalog_->Get(object).num_subobjects));
#endif
  materializing_[static_cast<size_t>(object)] = 0;
  planned_layouts_.erase(object);
  // The resident set changed (this landing, plus any evictions it
  // forced): the scrubber's target list is stale.
  if (scrubber_) scrubber_->Invalidate();
  auto node = waiters_.extract(object);
  if (node.empty()) return;
  for (Waiter& w : node.mapped()) {
    SubmitDisplay(object, std::move(w.on_started), std::move(w.on_completed),
                  std::move(w.on_interrupted));
  }
}

void StripedServer::RetryLandings() {
  while (!pending_landings_.empty()) {
    const ObjectId object = pending_landings_.front();
    Status st = objects_->MakeResident(object, PlannedLayout(object));
    if (!st.ok()) return;  // still no space; keep waiting
    pending_landings_.pop_front();
    Land(object);
  }
}

}  // namespace stagger
