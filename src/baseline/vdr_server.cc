#include "baseline/vdr_server.h"

#include <algorithm>
#include <limits>
#include <string>
#include <tuple>
#include <utility>

#include "util/check.h"

namespace stagger {

Status VdrConfig::Validate() const {
  if (num_clusters < 1) {
    return Status::InvalidArgument("VDR needs at least one cluster");
  }
  if (cluster_degree < 1) {
    return Status::InvalidArgument("cluster degree must be >= 1");
  }
  if (interval <= SimTime::Zero()) {
    return Status::InvalidArgument("interval must be positive");
  }
  if (objects_per_cluster < 1) {
    return Status::InvalidArgument("objects per cluster must be >= 1");
  }
  if (replication_wait_threshold < 1) {
    return Status::InvalidArgument("replication threshold must be >= 1");
  }
  if (preload_objects < 0) {
    return Status::InvalidArgument("preload count must be >= 0");
  }
  if (!preload_replicas.empty() && objects_per_cluster != 1) {
    // Round-robin replica installation assumes one object per cluster;
    // otherwise two replicas of one object could land in one cluster.
    return Status::InvalidArgument(
        "preload_replicas requires objects_per_cluster == 1");
  }
  if (fragment_size.bytes() <= 0) {
    return Status::InvalidArgument("fragment size must be positive");
  }
  if (materialization_timeout < SimTime::Zero()) {
    return Status::InvalidArgument("materialization timeout must be >= 0");
  }
  if (materialization_timeout > SimTime::Zero()) {
    if (max_materialization_retries < 0) {
      return Status::InvalidArgument("materialization retries must be >= 0");
    }
    if (materialization_retry_backoff <= SimTime::Zero()) {
      return Status::InvalidArgument(
          "materialization retry backoff must be positive");
    }
    if (max_materialization_backoff < materialization_retry_backoff) {
      return Status::InvalidArgument(
          "backoff cap must be >= the base backoff");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<VdrServer>> VdrServer::Create(Simulator* sim,
                                                     const Catalog* catalog,
                                                     MaterializationService* tertiary,
                                                     const VdrConfig& config) {
  STAGGER_RETURN_NOT_OK(config.Validate());
  auto server = std::unique_ptr<VdrServer>(
      new VdrServer(sim, catalog, tertiary, config));
  const int32_t capacity = config.num_clusters * config.objects_per_cluster;
  int32_t slot = 0;
  auto install = [&](ObjectId id) {
    if (slot >= capacity) return false;
    server->InstallReplica(id, slot % config.num_clusters);
    ++slot;
    return true;
  };
  if (!config.preload_replicas.empty()) {
    // Demand-proportional warm start: breadth first (one replica per
    // object wanting any), then surplus replicas by ascending id
    // (descending popularity) while capacity remains.
    const auto n = static_cast<ObjectId>(std::min<size_t>(
        config.preload_replicas.size(), static_cast<size_t>(catalog->size())));
    for (ObjectId id = 0; id < n; ++id) {
      if (config.preload_replicas[static_cast<size_t>(id)] > 0 &&
          !install(id)) {
        break;
      }
    }
    for (ObjectId id = 0; id < n && slot < capacity; ++id) {
      for (int32_t r = 1;
           r < config.preload_replicas[static_cast<size_t>(id)]; ++r) {
        if (!install(id)) break;
      }
    }
  } else {
    const int32_t preload =
        std::min({config.preload_objects, capacity, catalog->size()});
    for (ObjectId id = 0; id < preload; ++id) install(id);
  }
  return server;
}

VdrServer::VdrServer(Simulator* sim, const Catalog* catalog,
                     MaterializationService* tertiary, VdrConfig config)
    : sim_(sim), catalog_(catalog), tertiary_(tertiary), config_(config),
      clusters_(static_cast<size_t>(config.num_clusters)),
      objects_(static_cast<size_t>(catalog->size())) {}

SimTime VdrServer::DisplayTime(ObjectId object) const {
  return config_.interval * catalog_->Get(object).num_subobjects;
}

DataSize VdrServer::ObjectSize(ObjectId object) const {
  return config_.fragment_size * (catalog_->Get(object).num_subobjects *
                                  config_.cluster_degree);
}

Status VdrServer::RequestDisplay(ObjectId object, StartedFn on_started,
                                 CompletedFn on_completed,
                                 InterruptedFn on_interrupted) {
  // A cluster outage re-queues an accepted display for a surviving
  // replica (or rematerialization); the only terminal give-up is a
  // materialization that exhausts its timeout/retry budget (see
  // AbandonMaterialization), which fires on_interrupted.
  if (!catalog_->Contains(object)) {
    return Status::NotFound("object " + std::to_string(object) +
                            " not in catalog");
  }
  ObjectState& os = objects_[static_cast<size_t>(object)];
  ++os.access_count;
  os.last_access = sim_->Now();
  ++os.waiting;
  queue_.push_back(Pending{object, sim_->Now(), std::move(on_started),
                           std::move(on_completed),
                           std::move(on_interrupted)});
  metrics_.queue_length.Set(sim_->Now(), static_cast<double>(queue_.size()));
  Dispatch();
  return Status::OK();
}

void VdrServer::Dispatch() {
  if (dispatching_) return;
  dispatching_ = true;
  while (DispatchOnce()) {
  }
  dispatching_ = false;
  metrics_.queue_length.Set(sim_->Now(), static_cast<double>(queue_.size()));
#ifdef STAGGER_AUDIT
  // Self-check after every dispatch round: replica bookkeeping must be
  // bidirectionally consistent (see AuditInvariants).
  STAGGER_CHECK_OK(AuditInvariants());
#endif
}

Status VdrServer::AuditInvariants() const {
  // Cluster -> object references, capacity, and busy-time sanity.
  std::vector<int64_t> replicas_seen(objects_.size(), 0);
  for (size_t c = 0; c < clusters_.size(); ++c) {
    const ClusterState& cs = clusters_[c];
    STAGGER_AUDIT_VERIFY(static_cast<int32_t>(cs.resident.size()) <=
                         config_.objects_per_cluster)
        << "; cluster " << c << " holds " << cs.resident.size()
        << " objects, capacity " << config_.objects_per_cluster;
    for (ObjectId o : cs.resident) {
      STAGGER_AUDIT_VERIFY(o >= 0 &&
                           o < static_cast<ObjectId>(objects_.size()))
          << "; cluster " << c << " claims nonexistent object " << o;
      const auto& owners = objects_[static_cast<size_t>(o)].clusters;
      STAGGER_AUDIT_VERIFY(std::count(owners.begin(), owners.end(),
                                      static_cast<int32_t>(c)) == 1)
          << "; cluster " << c << " holds object " << o
          << " but the object does not point back exactly once";
      ++replicas_seen[static_cast<size_t>(o)];
    }
  }

  // Object -> cluster references and replica-count bounds.
  int64_t total_waiting = 0;
  for (size_t o = 0; o < objects_.size(); ++o) {
    const ObjectState& os = objects_[o];
    STAGGER_AUDIT_VERIFY(static_cast<int32_t>(os.clusters.size()) <=
                         config_.num_clusters)
        << "; object " << o << " has " << os.clusters.size()
        << " replicas but only " << config_.num_clusters << " clusters exist";
    STAGGER_AUDIT_VERIFY(static_cast<int64_t>(os.clusters.size()) ==
                         replicas_seen[o])
        << "; object " << o << " lists " << os.clusters.size()
        << " replicas but clusters hold " << replicas_seen[o];
    for (int32_t c : os.clusters) {
      STAGGER_AUDIT_VERIFY(c >= 0 && c < config_.num_clusters)
          << "; object " << o << " claims nonexistent cluster " << c;
    }
    STAGGER_AUDIT_VERIFY(os.waiting >= 0)
        << "; object " << o << " has negative waiting count " << os.waiting;
    total_waiting += os.waiting;
  }

  // Every queued request is accounted in its object's waiting count.
  STAGGER_AUDIT_VERIFY(total_waiting == static_cast<int64_t>(queue_.size()))
      << "; waiting counters sum to " << total_waiting << " but "
      << queue_.size() << " requests are queued";

  // Fault-state rules: an out-of-service cluster carries no activity,
  // and the active-display table matches the kDisplay clusters exactly
  // (with each piggyback destination in kCopyDest).
  int64_t display_clusters = 0;
  for (size_t c = 0; c < clusters_.size(); ++c) {
    const ClusterState& cs = clusters_[c];
    STAGGER_AUDIT_VERIFY(cs.down_disks >= 0 &&
                         cs.down_disks <= config_.cluster_degree)
        << "; cluster " << c << " records " << cs.down_disks
        << " disks down of " << config_.cluster_degree;
    STAGGER_AUDIT_VERIFY(cs.down_disks == 0 ||
                         cs.activity == ClusterActivity::kIdle)
        << "; cluster " << c << " has " << cs.down_disks
        << " disks down yet is still active";
    if (cs.activity == ClusterActivity::kDisplay) ++display_clusters;
  }
  STAGGER_AUDIT_VERIFY(static_cast<int64_t>(active_displays_.size()) ==
                       display_clusters)
      << "; " << active_displays_.size() << " active-display records but "
      << display_clusters << " clusters are displaying";
  // stagger-lint: allow(determinism-unordered-iter) -- audit-only verification; every record is checked independently, so visit order cannot affect the outcome
  for (const auto& [c, ad] : active_displays_) {
    STAGGER_AUDIT_VERIFY(
        clusters_[static_cast<size_t>(c)].activity == ClusterActivity::kDisplay)
        << "; active-display record on cluster " << c
        << " which is not displaying";
    STAGGER_AUDIT_VERIFY(ad.copy_dst < 0 ||
                         clusters_[static_cast<size_t>(ad.copy_dst)].activity ==
                             ClusterActivity::kCopyDest)
        << "; display on cluster " << c << " claims copy destination "
        << ad.copy_dst << " which is not receiving a copy";
  }
  return Status::OK();
}

bool VdrServer::DispatchOnce() {
  for (size_t i = 0; i < queue_.size(); ++i) {
    const ObjectId object = queue_[i].object;
    ObjectState& os = objects_[static_cast<size_t>(object)];

    const int32_t idle = FindIdleReplica(object);
    if (idle >= 0) {
      StartDisplay(i, idle);
      return true;
    }

    if (os.clusters.empty() && !os.materializing) {
      const int32_t dst = ClaimDestination(/*for_replication=*/false);
      if (dst >= 0) {
        StartMaterialization(object, dst);
        return true;
      }
    }
    // Otherwise this request keeps waiting (for the tertiary, or for a
    // replica to come free); later requests may still be servable.
  }
  return false;
}

int32_t VdrServer::FindIdleReplica(ObjectId object) const {
  for (int32_t c : objects_[static_cast<size_t>(object)].clusters) {
    if (clusters_[static_cast<size_t>(c)].activity == ClusterActivity::kIdle &&
        ClusterUp(c)) {
      return c;
    }
  }
  return -1;
}

int32_t VdrServer::ClaimDestination(bool for_replication, ObjectId for_object) {
  const auto holds = [this, for_object](int32_t c) {
    if (for_object == kInvalidObject) return false;
    const auto& resident = clusters_[static_cast<size_t>(c)].resident;
    return std::find(resident.begin(), resident.end(), for_object) !=
           resident.end();
  };
  // Prefer an idle, in-service cluster with spare capacity.
  for (int32_t c = 0; c < config_.num_clusters; ++c) {
    ClusterState& cs = clusters_[static_cast<size_t>(c)];
    if (cs.activity == ClusterActivity::kIdle && ClusterUp(c) && !holds(c) &&
        static_cast<int32_t>(cs.resident.size()) < config_.objects_per_cluster) {
      return c;
    }
  }
  // Otherwise evict from an idle cluster whose resident has no queued
  // demand.  Victim preference (least response-time damage first):
  //   1. never-accessed objects (highest id — arbitrary but stable);
  //   2. surplus replicas, least-demanded per replica first;
  //   3. sole replicas, LFU with LRU tie-break.
  int32_t best_cluster = -1;
  ObjectId best_object = kInvalidObject;
  std::tuple<int32_t, double, int64_t, int64_t> best_key{
      std::numeric_limits<int32_t>::max(), 0.0, 0, 0};
  for (int32_t c = 0; c < config_.num_clusters; ++c) {
    ClusterState& cs = clusters_[static_cast<size_t>(c)];
    if (cs.activity != ClusterActivity::kIdle || !ClusterUp(c) || holds(c)) {
      continue;
    }
    for (ObjectId o : cs.resident) {
      const ObjectState& os = objects_[static_cast<size_t>(o)];
      if (os.waiting > 0) continue;
      const auto replicas = static_cast<double>(os.clusters.size());
      std::tuple<int32_t, double, int64_t, int64_t> key;
      if (os.access_count == 0) {
        key = {0, 0.0, -static_cast<int64_t>(o), 0};
      } else if (os.clusters.size() > 1) {
        key = {1, static_cast<double>(os.access_count) / replicas,
               os.last_access.micros(), o};
      } else {
        if (for_replication) continue;  // never displace a sole replica
        key = {2, static_cast<double>(os.access_count),
               os.last_access.micros(), o};
      }
      if (best_cluster < 0 || key < best_key) {
        best_key = key;
        best_cluster = c;
        best_object = o;
      }
    }
  }
  if (best_cluster < 0) return -1;

  ClusterState& cs = clusters_[static_cast<size_t>(best_cluster)];
  cs.resident.erase(
      std::find(cs.resident.begin(), cs.resident.end(), best_object));
  ObjectState& os = objects_[static_cast<size_t>(best_object)];
  os.clusters.erase(
      std::find(os.clusters.begin(), os.clusters.end(), best_cluster));
  ++metrics_.evictions;
  return best_cluster;
}

void VdrServer::SetActivity(int32_t cluster, ClusterActivity activity) {
  ClusterState& cs = clusters_[static_cast<size_t>(cluster)];
  const bool was_idle = cs.activity == ClusterActivity::kIdle;
  const bool now_idle = activity == ClusterActivity::kIdle;
  if (was_idle && !now_idle) {
    cs.busy_since = sim_->Now();
  } else if (!was_idle && now_idle) {
    cs.busy_total += sim_->Now() - cs.busy_since;
  }
  cs.activity = activity;
}

void VdrServer::InstallReplica(ObjectId object, int32_t cluster) {
  clusters_[static_cast<size_t>(cluster)].resident.push_back(object);
  objects_[static_cast<size_t>(object)].clusters.push_back(cluster);
}

void VdrServer::StartDisplay(size_t queue_index, int32_t cluster) {
  Pending p = std::move(queue_[static_cast<size_t>(queue_index)]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(queue_index));
  ObjectState& os = objects_[static_cast<size_t>(p.object)];
  STAGGER_CHECK(os.waiting > 0);
  --os.waiting;

  SetActivity(cluster, ClusterActivity::kDisplay);
  if (!p.resumed) {
    const SimTime latency = sim_->Now() - p.arrival;
    metrics_.startup_latency_sec.Add(latency.seconds());
    if (p.on_started) p.on_started(latency);
  }

  // Piggyback replication: if demand for the object still outstrips its
  // replicas, multicast this display's cluster read into a destination
  // cluster; the copy lands when the display ends.
  // Demand must persistently outstrip supply: with R replicas, another
  // copy is spawned only while R + threshold requests are still queued.
  // Transient pair-collisions under near-uniform access therefore do
  // not trade library breadth for replicas.
  int32_t copy_dst = -1;
  if (config_.enable_replication &&
      os.waiting >= static_cast<int32_t>(os.clusters.size()) +
                        config_.replication_wait_threshold &&
      static_cast<int32_t>(os.clusters.size()) < config_.num_clusters) {
    copy_dst = ClaimDestination(/*for_replication=*/true, p.object);
    if (copy_dst >= 0) SetActivity(copy_dst, ClusterActivity::kCopyDest);
  }

  ActiveDisplay ad;
  ad.object = p.object;
  ad.copy_dst = copy_dst;
  ad.on_completed = std::move(p.on_completed);
  ad.on_interrupted = std::move(p.on_interrupted);
  ad.completion = sim_->ScheduleAfter(DisplayTime(p.object),
                                      [this, cluster] {
                                        CompleteDisplay(cluster);
                                      });
  active_displays_[cluster] = std::move(ad);
}

void VdrServer::CompleteDisplay(int32_t cluster) {
  auto node = active_displays_.extract(cluster);
  STAGGER_CHECK(!node.empty()) << "no active display on cluster " << cluster;
  ActiveDisplay& ad = node.mapped();
  SetActivity(cluster, ClusterActivity::kIdle);
  if (ad.copy_dst >= 0) {
    InstallReplica(ad.object, ad.copy_dst);
    SetActivity(ad.copy_dst, ClusterActivity::kIdle);
    ++metrics_.replications;
  }
  ++metrics_.displays_completed;
  if (ad.on_completed) ad.on_completed();
  Dispatch();
}

void VdrServer::StartMaterialization(ObjectId object, int32_t dst) {
  SetActivity(dst, ClusterActivity::kMaterializing);
  ObjectState& os = objects_[static_cast<size_t>(object)];
  os.materializing = true;
  ++os.mat_attempts;
  // Identifies this attempt: the landing and the timeout guard race, and
  // whichever fires first bumps the token to void the other.
  const int64_t token = ++os.mat_token;
  ++metrics_.materializations;
  // An outage bumps the destination's epoch, voiding this landing: the
  // transfer's bits went to a dead cluster and the object must re-queue.
  const int64_t epoch = clusters_[static_cast<size_t>(dst)].epoch;
  tertiary_->Enqueue(
      object, ObjectSize(object),
      [this, dst, epoch, token](ObjectId done) {
        ObjectState& obj = objects_[static_cast<size_t>(done)];
        if (obj.mat_token != token) {
          // The timeout guard gave up on this attempt already; the bits
          // are discarded (the retry machinery owns the object now).
          Dispatch();
          return;
        }
        obj.mat_token = token + 1;  // void the pending timeout guard
        obj.materializing = false;
        obj.mat_attempts = 0;
        ClusterState& cs = clusters_[static_cast<size_t>(dst)];
        if (cs.epoch == epoch) {
          STAGGER_CHECK(cs.activity == ClusterActivity::kMaterializing);
          InstallReplica(done, dst);
          SetActivity(dst, ClusterActivity::kIdle);
        }
        Dispatch();
      },
      /*on_start=*/nullptr);
  if (config_.materialization_timeout > SimTime::Zero()) {
    sim_->ScheduleAfter(config_.materialization_timeout,
                        [this, object, dst, token, epoch] {
                          OnMaterializationTimeout(object, dst, token, epoch);
                        });
  }
}

void VdrServer::OnMaterializationTimeout(ObjectId object, int32_t dst,
                                         int64_t token, int64_t epoch) {
  ObjectState& os = objects_[static_cast<size_t>(object)];
  if (os.mat_token != token) return;  // the landing beat the guard
  ++metrics_.materialization_timeouts;
  // Void the eventual landing and release the destination so other work
  // can claim it during the backoff cooldown.  An outage may already
  // have re-purposed dst (epoch mismatch) — leave it alone then.
  ++os.mat_token;
  ClusterState& cs = clusters_[static_cast<size_t>(dst)];
  if (cs.epoch == epoch &&
      cs.activity == ClusterActivity::kMaterializing) {
    SetActivity(dst, ClusterActivity::kIdle);
  }
  if (os.mat_attempts > config_.max_materialization_retries) {
    // Retry budget exhausted: give up on the object terminally.
    os.materializing = false;
    os.mat_attempts = 0;
    ++metrics_.materializations_abandoned;
    AbandonMaterialization(object);
    Dispatch();
    return;
  }
  // Capped exponential backoff: materializing stays true as a cooldown
  // latch (DispatchOnce will not re-issue), then the retry event clears
  // it and the normal dispatch path restarts the fetch.
  SimTime backoff = config_.materialization_retry_backoff;
  for (int32_t i = 1; i < os.mat_attempts &&
                      backoff < config_.max_materialization_backoff;
       ++i) {
    backoff = backoff + backoff;
  }
  backoff = std::min(backoff, config_.max_materialization_backoff);
  const int64_t retry_token = os.mat_token;
  sim_->ScheduleAfter(backoff, [this, object, retry_token] {
    ObjectState& obj = objects_[static_cast<size_t>(object)];
    if (obj.mat_token != retry_token) return;
    obj.materializing = false;
    ++metrics_.materialization_retries;
    Dispatch();
  });
}

void VdrServer::AbandonMaterialization(ObjectId object) {
  // Fail every queued display of the object; each receives its terminal
  // interruption (the give-up is the one case VDR abandons a request).
  std::vector<InterruptedFn> interrupted;
  ObjectState& os = objects_[static_cast<size_t>(object)];
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->object == object) {
      STAGGER_CHECK(os.waiting > 0);
      --os.waiting;
      if (it->on_interrupted) interrupted.push_back(std::move(it->on_interrupted));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  metrics_.queue_length.Set(sim_->Now(), static_cast<double>(queue_.size()));
  for (InterruptedFn& fn : interrupted) fn();
}

void VdrServer::OnDiskDown(int32_t disk, bool media_lost) {
  if (disk < 0) return;
  const int32_t cluster = disk / config_.cluster_degree;
  if (cluster >= config_.num_clusters) return;  // spare disk
  ClusterState& cs = clusters_[static_cast<size_t>(cluster)];
  ++cs.down_disks;
  // The first down disk takes the cluster out of service; a later
  // media-losing failure on an already-down cluster still drops its
  // replicas (OnClusterDown is idempotent on an idle cluster).
  if (cs.down_disks == 1 || media_lost) OnClusterDown(cluster, media_lost);
}

void VdrServer::OnDiskUp(int32_t disk) {
  if (disk < 0) return;
  const int32_t cluster = disk / config_.cluster_degree;
  if (cluster >= config_.num_clusters) return;  // spare disk
  ClusterState& cs = clusters_[static_cast<size_t>(cluster)];
  STAGGER_CHECK(cs.down_disks > 0)
      << "disk-up on cluster " << cluster << " with no disks down";
  --cs.down_disks;
  // Back in service: the head of the queue may now be servable.
  if (cs.down_disks == 0) Dispatch();
}

void VdrServer::OnClusterDown(int32_t cluster, bool media_lost) {
  ClusterState& cs = clusters_[static_cast<size_t>(cluster)];
  ++cs.epoch;
  switch (cs.activity) {
    case ClusterActivity::kDisplay: {
      // Fail over: cut the display short and re-queue it at the head so
      // the next dispatch lands it on a surviving replica (or starts a
      // fresh materialization if this was the last copy).
      auto node = active_displays_.extract(cluster);
      STAGGER_CHECK(!node.empty())
          << "display cluster " << cluster << " has no active record";
      ActiveDisplay& ad = node.mapped();
      sim_->Cancel(ad.completion);
      if (ad.copy_dst >= 0) {
        SetActivity(ad.copy_dst, ClusterActivity::kIdle);
        ++metrics_.replications_aborted;
      }
      SetActivity(cluster, ClusterActivity::kIdle);
      ++metrics_.displays_interrupted;
      ++metrics_.failovers;
      Pending retry;
      retry.object = ad.object;
      retry.arrival = sim_->Now();
      retry.on_completed = std::move(ad.on_completed);
      retry.on_interrupted = std::move(ad.on_interrupted);
      retry.resumed = true;
      ++objects_[static_cast<size_t>(ad.object)].waiting;
      queue_.push_front(std::move(retry));
      break;
    }
    case ClusterActivity::kCopyDest: {
      // Abort the inbound copy; the source display is unaffected.
      // stagger-lint: allow(determinism-unordered-iter) -- find-one-and-break scan: at most one record matches copy_dst, so visit order cannot affect the outcome
      for (auto& [src, ad] : active_displays_) {
        if (ad.copy_dst == cluster) {
          ad.copy_dst = -1;
          break;
        }
      }
      SetActivity(cluster, ClusterActivity::kIdle);
      ++metrics_.replications_aborted;
      break;
    }
    case ClusterActivity::kMaterializing:
      // The in-flight tertiary landing is voided by the epoch bump; its
      // completion callback re-dispatches the still-waiting request.
      SetActivity(cluster, ClusterActivity::kIdle);
      break;
    case ClusterActivity::kCopySource:
    case ClusterActivity::kIdle:
      break;
  }
  if (media_lost) {
    for (ObjectId o : cs.resident) {
      auto& owners = objects_[static_cast<size_t>(o)].clusters;
      owners.erase(std::find(owners.begin(), owners.end(), cluster));
      ++metrics_.replicas_lost;
    }
    cs.resident.clear();
  }
  Dispatch();
}

int32_t VdrServer::ResidentObjectCount() const {
  int32_t count = 0;
  for (const ObjectState& os : objects_) {
    if (!os.clusters.empty()) ++count;
  }
  return count;
}

double VdrServer::MeanClusterUtilization() const {
  const SimTime now = sim_->Now();
  if (now <= SimTime::Zero()) return 0.0;
  double total = 0.0;
  for (const ClusterState& cs : clusters_) {
    SimTime busy = cs.busy_total;
    if (cs.activity != ClusterActivity::kIdle) busy += now - cs.busy_since;
    total += busy.seconds() / now.seconds();
  }
  return total / static_cast<double>(clusters_.size());
}

}  // namespace stagger
