// Virtual data replication baseline ([GS93], summarized in Section 2).
//
// The D disks are partitioned into R = D/M physical clusters; an object
// is declustered across the disks of exactly one cluster, so a cluster
// delivers one display at a time for the object's whole duration.  To
// keep a popular object's cluster from becoming the bottleneck, the
// server dynamically *replicates* frequently accessed objects onto
// additional clusters (and eviction reclaims replicas of cold objects).
//
// The replication trigger approximates [GS93]'s MRT state-transition
// policy: when at least `replication_wait_threshold` requests remain
// queued for an object as one of its replicas begins a display, the
// display's cluster read is multicast into a claimable destination
// cluster ("piggyback" replication) — the new replica comes online when
// the display completes, at no extra source-bandwidth cost.  Eviction
// reclaims replicas of cold objects LFU-first.  See DESIGN.md
// (Substitutions).

#ifndef STAGGER_BASELINE_VDR_SERVER_H_
#define STAGGER_BASELINE_VDR_SERVER_H_

#include <deque>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "storage/catalog.h"
#include "tertiary/tertiary_manager.h"
#include "util/result.h"
#include "util/stats.h"
#include "workload/media_service.h"

namespace stagger {

/// \brief VDR server configuration.
struct VdrConfig {
  int32_t num_clusters = 0;       ///< R = D / M
  int32_t cluster_degree = 0;     ///< M, disks per cluster
  SimTime interval;               ///< S(C_i), per-subobject delivery time
  /// Per-disk transfer unit; object size = n * M * fragment_size.
  DataSize fragment_size = DataSize::MB(1.512);
  /// Whole objects storable per cluster (1 under Table 3 parameters).
  int32_t objects_per_cluster = 1;
  /// Master switch for dynamic replication.
  bool enable_replication = true;
  /// Damping for replica growth: a display spawns a piggyback replica
  /// only while waiting >= threshold * current-replica-count, so replica
  /// sets stop growing once supply matches queued demand.
  int32_t replication_wait_threshold = 1;
  /// Objects (by id, ascending) installed one-per-cluster-slot before
  /// the run starts, skipping the cold-start transient.
  int32_t preload_objects = 0;
  /// Optional demand-proportional preload: replica count per object id.
  /// When non-empty this overrides preload_objects; installation stops
  /// when cluster capacity runs out.
  std::vector<int32_t> preload_replicas;

  Status Validate() const;
};

/// \brief What each cluster is doing.
enum class ClusterActivity {
  kIdle,
  kDisplay,
  kCopySource,
  kCopyDest,
  kMaterializing,
};

/// \brief Counters reported by the VDR server.
struct VdrMetrics {
  int64_t displays_completed = 0;
  int64_t replications = 0;
  int64_t materializations = 0;
  int64_t evictions = 0;
  StreamingStats startup_latency_sec;
  TimeWeighted queue_length;
};

/// \brief The virtual-data-replication media server.
class VdrServer : public MediaService {
 public:
  /// \param sim      simulation kernel; outlives the server.
  /// \param catalog  database; outlives the server.
  /// \param tertiary shared tertiary manager; outlives the server.
  static Result<std::unique_ptr<VdrServer>> Create(Simulator* sim,
                                                   const Catalog* catalog,
                                                   MaterializationService* tertiary,
                                                   const VdrConfig& config);

  Status RequestDisplay(ObjectId object, StartedFn on_started,
                        CompletedFn on_completed) override;

  const VdrMetrics& metrics() const { return metrics_; }
  const VdrConfig& config() const { return config_; }

  /// Replica/cluster bookkeeping audit: object->cluster and
  /// cluster->object references agree bidirectionally, per-cluster
  /// residency respects capacity, replica counts never exceed R, and
  /// waiting counts sum to the queue length.  Returns the first
  /// violation; invoked after every dispatch round when STAGGER_AUDIT
  /// is on.
  Status AuditInvariants() const;

  /// Replicas of `object` currently resident.
  int32_t ReplicaCount(ObjectId object) const {
    return static_cast<int32_t>(
        objects_[static_cast<size_t>(object)].clusters.size());
  }
  int32_t ResidentObjectCount() const;
  size_t pending_requests() const { return queue_.size(); }
  /// Fraction of elapsed time the mean cluster spent non-idle.
  double MeanClusterUtilization() const;

 private:
  struct ClusterState {
    ClusterActivity activity = ClusterActivity::kIdle;
    std::vector<ObjectId> resident;
    SimTime busy_since;
    SimTime busy_total;
  };
  struct ObjectState {
    std::vector<int32_t> clusters;  ///< replica locations
    int64_t access_count = 0;
    SimTime last_access;
    int32_t waiting = 0;
    bool materializing = false;
  };
  struct Pending {
    ObjectId object;
    SimTime arrival;
    StartedFn on_started;
    CompletedFn on_completed;
  };

  VdrServer(Simulator* sim, const Catalog* catalog, MaterializationService* tertiary,
            VdrConfig config);

  void Dispatch();
  /// FIFO pass over the queue; true if any action was taken.
  bool DispatchOnce();
  /// Idle cluster holding `object`, or -1.
  int32_t FindIdleReplica(ObjectId object) const;
  /// Claims a destination cluster (idle, spare capacity or evictable
  /// content); evicts as needed.  Returns -1 when none is claimable.
  /// Replication destinations may only displace never-accessed objects
  /// or surplus replicas — growing a replica set never shrinks the set
  /// of unique resident objects; materializations may displace anything
  /// evictable.  Clusters already holding `for_object` are never
  /// claimed: a second replica in the same cluster adds no parallelism.
  int32_t ClaimDestination(bool for_replication,
                           ObjectId for_object = kInvalidObject);
  void StartDisplay(size_t queue_index, int32_t cluster);
  void StartMaterialization(ObjectId object, int32_t dst);
  void SetActivity(int32_t cluster, ClusterActivity activity);
  void InstallReplica(ObjectId object, int32_t cluster);
  SimTime DisplayTime(ObjectId object) const;
  DataSize ObjectSize(ObjectId object) const;

  Simulator* sim_;
  const Catalog* catalog_;
  MaterializationService* tertiary_;
  VdrConfig config_;
  std::vector<ClusterState> clusters_;
  std::vector<ObjectState> objects_;
  std::deque<Pending> queue_;
  VdrMetrics metrics_;
  bool dispatching_ = false;
};

}  // namespace stagger

#endif  // STAGGER_BASELINE_VDR_SERVER_H_
