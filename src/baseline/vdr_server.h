// Virtual data replication baseline ([GS93], summarized in Section 2).
//
// The D disks are partitioned into R = D/M physical clusters; an object
// is declustered across the disks of exactly one cluster, so a cluster
// delivers one display at a time for the object's whole duration.  To
// keep a popular object's cluster from becoming the bottleneck, the
// server dynamically *replicates* frequently accessed objects onto
// additional clusters (and eviction reclaims replicas of cold objects).
//
// The replication trigger approximates [GS93]'s MRT state-transition
// policy: when at least `replication_wait_threshold` requests remain
// queued for an object as one of its replicas begins a display, the
// display's cluster read is multicast into a claimable destination
// cluster ("piggyback" replication) — the new replica comes online when
// the display completes, at no extra source-bandwidth cost.  Eviction
// reclaims replicas of cold objects LFU-first.  See DESIGN.md
// (Substitutions).

#ifndef STAGGER_BASELINE_VDR_SERVER_H_
#define STAGGER_BASELINE_VDR_SERVER_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "storage/catalog.h"
#include "tertiary/tertiary_manager.h"
#include "util/result.h"
#include "util/stats.h"
#include "workload/media_service.h"

namespace stagger {

/// \brief VDR server configuration.
struct VdrConfig {
  int32_t num_clusters = 0;       ///< R = D / M
  int32_t cluster_degree = 0;     ///< M, disks per cluster
  SimTime interval;               ///< S(C_i), per-subobject delivery time
  /// Per-disk transfer unit; object size = n * M * fragment_size.
  DataSize fragment_size = DataSize::MB(1.512);
  /// Whole objects storable per cluster (1 under Table 3 parameters).
  int32_t objects_per_cluster = 1;
  /// Master switch for dynamic replication.
  bool enable_replication = true;
  /// Damping for replica growth: a display spawns a piggyback replica
  /// only while waiting >= threshold * current-replica-count, so replica
  /// sets stop growing once supply matches queued demand.
  int32_t replication_wait_threshold = 1;
  /// Guard against a hung tertiary read: a materialization that has not
  /// landed after this long is abandoned and retried with exponential
  /// backoff.  Zero (the default) disables the guard — the read is
  /// trusted to complete eventually.
  SimTime materialization_timeout = SimTime::Zero();
  /// Retries after the first timed-out attempt.  When the budget is
  /// exhausted, every queued display of the object receives a terminal
  /// interruption instead of waiting forever.
  int32_t max_materialization_retries = 3;
  /// The first retry waits this long; the wait doubles per retry,
  /// capped at `max_materialization_backoff`.
  SimTime materialization_retry_backoff = SimTime::Seconds(30);
  SimTime max_materialization_backoff = SimTime::Minutes(8);
  /// Objects (by id, ascending) installed one-per-cluster-slot before
  /// the run starts, skipping the cold-start transient.
  int32_t preload_objects = 0;
  /// Optional demand-proportional preload: replica count per object id.
  /// When non-empty this overrides preload_objects; installation stops
  /// when cluster capacity runs out.
  std::vector<int32_t> preload_replicas;

  Status Validate() const;
};

/// \brief What each cluster is doing.
enum class ClusterActivity {
  kIdle,
  kDisplay,
  kCopySource,
  kCopyDest,
  kMaterializing,
};

/// \brief Counters reported by the VDR server.
struct VdrMetrics {
  int64_t displays_completed = 0;
  int64_t replications = 0;
  int64_t materializations = 0;
  int64_t evictions = 0;
  // --- fault handling (src/fault/) -------------------------------------
  /// Displays cut short by a cluster outage (each is also re-queued,
  /// so it is not lost unless its station gives up).
  int64_t displays_interrupted = 0;
  /// Interrupted displays re-queued onto the surviving replica set.
  int64_t failovers = 0;
  /// Resident replicas dropped because their cluster lost media.
  int64_t replicas_lost = 0;
  /// Piggyback copies aborted by a destination-cluster outage.
  int64_t replications_aborted = 0;
  // --- tertiary timeout/retry (materialization_timeout > 0) ------------
  /// Materializations abandoned because they outran the timeout.
  int64_t materialization_timeouts = 0;
  /// Re-issued materializations (each after a backoff cooldown).
  int64_t materialization_retries = 0;
  /// Objects given up on after the retry budget; their queued displays
  /// received a terminal interruption.
  int64_t materializations_abandoned = 0;
  StreamingStats startup_latency_sec;
  TimeWeighted queue_length;
};

/// \brief The virtual-data-replication media server.
class VdrServer : public MediaService {
 public:
  /// \param sim      simulation kernel; outlives the server.
  /// \param catalog  database; outlives the server.
  /// \param tertiary shared tertiary manager; outlives the server.
  static Result<std::unique_ptr<VdrServer>> Create(Simulator* sim,
                                                   const Catalog* catalog,
                                                   MaterializationService* tertiary,
                                                   const VdrConfig& config);

  Status RequestDisplay(ObjectId object, StartedFn on_started,
                        CompletedFn on_completed,
                        InterruptedFn on_interrupted = nullptr) override;

  /// \name Fault wiring (FaultInjector listeners)
  /// Disks map onto clusters by index: cluster = disk / M; disks beyond
  /// R * M are spares and are ignored.  A cluster with any disk down is
  /// out of service — its in-flight display fails over to another
  /// replica (re-queued at the head of the queue), an inbound copy or
  /// materialization landing is aborted, and, when the outage lost
  /// media (`media_lost`), its resident replicas are dropped.
  /// @{
  void OnDiskDown(int32_t disk, bool media_lost);
  void OnDiskUp(int32_t disk);
  /// @}

  /// True when every disk of `cluster` is in service.
  bool ClusterUp(int32_t cluster) const {
    return clusters_[static_cast<size_t>(cluster)].down_disks == 0;
  }

  const VdrMetrics& metrics() const { return metrics_; }
  const VdrConfig& config() const { return config_; }

  /// Replica/cluster bookkeeping audit: object->cluster and
  /// cluster->object references agree bidirectionally, per-cluster
  /// residency respects capacity, replica counts never exceed R, and
  /// waiting counts sum to the queue length.  Returns the first
  /// violation; invoked after every dispatch round when STAGGER_AUDIT
  /// is on.
  Status AuditInvariants() const;

  /// Replicas of `object` currently resident.
  int32_t ReplicaCount(ObjectId object) const {
    return static_cast<int32_t>(
        objects_[static_cast<size_t>(object)].clusters.size());
  }
  int32_t ResidentObjectCount() const;
  size_t pending_requests() const { return queue_.size(); }
  /// Fraction of elapsed time the mean cluster spent non-idle.
  double MeanClusterUtilization() const;

 private:
  struct ClusterState {
    ClusterActivity activity = ClusterActivity::kIdle;
    std::vector<ObjectId> resident;
    SimTime busy_since;
    SimTime busy_total;
    /// Disks of this cluster currently failed or stalled; the cluster
    /// serves displays only at zero (all M disks must stream).
    int32_t down_disks = 0;
    /// Bumped on every outage; voids stale completion callbacks (a
    /// tertiary landing scheduled before the outage must not install).
    int64_t epoch = 0;
  };
  struct ObjectState {
    std::vector<int32_t> clusters;  ///< replica locations
    int64_t access_count = 0;
    SimTime last_access;
    int32_t waiting = 0;
    bool materializing = false;
    /// Bumped whenever the in-flight materialization changes identity
    /// (issue, landing, timeout); voids stale timeout and completion
    /// callbacks the same way ClusterState::epoch voids landings.
    int64_t mat_token = 0;
    /// Attempts burned on the current materialization effort; reset on
    /// success or terminal abandonment.
    int32_t mat_attempts = 0;
  };
  struct Pending {
    ObjectId object;
    SimTime arrival;
    StartedFn on_started;
    CompletedFn on_completed;
    /// Terminal give-up notification: fired only when the object's
    /// materialization exhausts its retry budget.
    InterruptedFn on_interrupted;
    /// True when this entry re-queues a display interrupted by a
    /// cluster outage; on_started and the startup-latency sample fired
    /// at the original start and must not repeat.
    bool resumed = false;
  };
  /// In-flight display on one cluster, interruptible by an outage.
  struct ActiveDisplay {
    ObjectId object = kInvalidObject;
    int32_t copy_dst = -1;  ///< piggyback destination, or -1
    CompletedFn on_completed;
    /// Carried through failover re-queues so a display whose
    /// rematerialization later gives up can still be interrupted.
    InterruptedFn on_interrupted;
    EventHandle completion;
  };

  VdrServer(Simulator* sim, const Catalog* catalog, MaterializationService* tertiary,
            VdrConfig config);

  void Dispatch();
  /// FIFO pass over the queue; true if any action was taken.
  bool DispatchOnce();
  /// Idle cluster holding `object`, or -1.
  int32_t FindIdleReplica(ObjectId object) const;
  /// Claims a destination cluster (idle, spare capacity or evictable
  /// content); evicts as needed.  Returns -1 when none is claimable.
  /// Replication destinations may only displace never-accessed objects
  /// or surplus replicas — growing a replica set never shrinks the set
  /// of unique resident objects; materializations may displace anything
  /// evictable.  Clusters already holding `for_object` are never
  /// claimed: a second replica in the same cluster adds no parallelism.
  int32_t ClaimDestination(bool for_replication,
                           ObjectId for_object = kInvalidObject);
  void StartDisplay(size_t queue_index, int32_t cluster);
  void CompleteDisplay(int32_t cluster);
  void StartMaterialization(ObjectId object, int32_t dst);
  /// Timeout guard for one materialization attempt; `token` identifies
  /// the attempt and voids the guard when the landing beat it, `epoch`
  /// tells a still-pending destination from one re-claimed after an
  /// outage.
  void OnMaterializationTimeout(ObjectId object, int32_t dst, int64_t token,
                                int64_t epoch);
  /// Terminal give-up: fail every queued display of `object`.
  void AbandonMaterialization(ObjectId object);
  void OnClusterDown(int32_t cluster, bool media_lost);
  void SetActivity(int32_t cluster, ClusterActivity activity);
  void InstallReplica(ObjectId object, int32_t cluster);
  SimTime DisplayTime(ObjectId object) const;
  DataSize ObjectSize(ObjectId object) const;

  Simulator* sim_;
  const Catalog* catalog_;
  MaterializationService* tertiary_;
  VdrConfig config_;
  std::vector<ClusterState> clusters_;
  std::vector<ObjectState> objects_;
  std::deque<Pending> queue_;
  /// Keyed by the cluster running the display.
  std::unordered_map<int32_t, ActiveDisplay> active_displays_;
  VdrMetrics metrics_;
  bool dispatching_ = false;
};

}  // namespace stagger

#endif  // STAGGER_BASELINE_VDR_SERVER_H_
