#include "storage/layout.h"

#include <algorithm>
#include <string>

namespace stagger {

Result<StaggeredLayout> StaggeredLayout::Create(int32_t num_disks,
                                                int32_t start_disk,
                                                int32_t stride, int32_t degree,
                                                bool parity) {
  if (num_disks < 1) {
    return Status::InvalidArgument("layout: need at least one disk");
  }
  if (start_disk < 0 || start_disk >= num_disks) {
    return Status::InvalidArgument("layout: start disk out of range");
  }
  if (stride < 1 || stride > num_disks) {
    return Status::InvalidArgument("layout: stride must be in [1, D]");
  }
  if (degree < 1 || degree > num_disks) {
    return Status::InvalidArgument("layout: degree must be in [1, D]");
  }
  if (parity && degree + 1 > num_disks) {
    // The parity disk is the (M+1)-th consecutive disk of the stripe;
    // it is disjoint from the data disks only while M + 1 <= D.
    return Status::InvalidArgument(
        "layout: parity requires degree + 1 <= D so the parity disk is "
        "disjoint from its stripe");
  }
  return StaggeredLayout(num_disks, start_disk, stride, degree, parity);
}

StaggeredLayout::StaggeredLayout(int32_t num_disks, int32_t start_disk,
                                 int32_t stride, int32_t degree, bool parity)
    : num_disks_(num_disks), start_disk_(start_disk), stride_(stride),
      degree_(degree), parity_(parity) {
  const int64_t g = std::gcd(static_cast<int64_t>(num_disks),
                             static_cast<int64_t>(stride));
  period_ = static_cast<int32_t>(num_disks / g);
  if (period_ > 1) {
    // ceil(2^64 / P) == floor((2^64 - 1) / P) + 1 for every P >= 2.
    period_magic_ =
        ~uint64_t{0} / static_cast<uint64_t>(period_) + uint64_t{1};
    auto table = std::make_shared<std::vector<int32_t>>(
        static_cast<size_t>(period_));
    int32_t disk = start_disk;
    for (int32_t r = 0; r < period_; ++r) {
      (*table)[static_cast<size_t>(r)] = disk;
      disk += stride;
      if (disk >= num_disks) disk -= num_disks;
    }
    row_first_ = std::move(table);
  }
}

int32_t StaggeredLayout::UniqueDisksUsed(int64_t num_subobjects) const {
  std::vector<char> used(static_cast<size_t>(num_disks_), 0);
  for (int64_t i = 0; i < num_subobjects; ++i) {
    for (int32_t j = 0; j < degree_; ++j) {
      used[static_cast<size_t>(DiskFor(i, j))] = 1;
    }
    if (parity_) used[static_cast<size_t>(ParityDiskFor(i))] = 1;
    // Once every disk is touched further subobjects change nothing; the
    // walk revisits after at most D/gcd(D,k) steps.
    if (i >= num_disks_) break;
  }
  return static_cast<int32_t>(std::count(used.begin(), used.end(), 1));
}

std::vector<int64_t> StaggeredLayout::FragmentsPerDisk(int64_t num_subobjects) const {
  std::vector<int64_t> counts(static_cast<size_t>(num_disks_), 0);
  // The start-disk walk has period P = D / gcd(D, k); count full periods
  // in closed form and walk only the remainder.
  const int64_t g = std::gcd(static_cast<int64_t>(num_disks_),
                             static_cast<int64_t>(stride_));
  const int64_t period = num_disks_ / g;
  const int64_t full = num_subobjects / period;
  const int64_t rest = num_subobjects % period;

  auto add_subobject = [&](int64_t i, int64_t times) {
    for (int32_t j = 0; j < degree_; ++j) {
      counts[static_cast<size_t>(DiskFor(i, j))] += times;
    }
    if (parity_) counts[static_cast<size_t>(ParityDiskFor(i))] += times;
  };
  if (full > 0) {
    for (int64_t i = 0; i < period; ++i) add_subobject(i, full);
  }
  for (int64_t i = 0; i < rest; ++i) add_subobject(i, 1);
  return counts;
}

bool StaggeredLayout::IsSkewFree(int64_t num_subobjects) const {
  std::vector<int64_t> counts = FragmentsPerDisk(num_subobjects);
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  // A perfectly balanced object differs by at most one fragment across
  // disks (exact equality is impossible unless D divides the total).
  return *hi - *lo <= 1;
}

Result<ClusterLayout> ClusterLayout::Create(int32_t num_disks, int32_t cluster,
                                            int32_t degree) {
  if (num_disks < 1) {
    return Status::InvalidArgument("cluster layout: need at least one disk");
  }
  if (degree < 1 || degree > num_disks) {
    return Status::InvalidArgument("cluster layout: degree must be in [1, D]");
  }
  const int32_t num_clusters = num_disks / degree;
  if (num_clusters < 1) {
    return Status::InvalidArgument("cluster layout: no full cluster fits");
  }
  if (cluster < 0 || cluster >= num_clusters) {
    return Status::InvalidArgument("cluster layout: cluster index out of range [0, " +
                                   std::to_string(num_clusters) + ")");
  }
  return ClusterLayout(num_disks, cluster, degree);
}

}  // namespace stagger
