// The Object Manager of the paper's Centralized Scheduler: tracks which
// objects are disk resident, where they are placed, and — when disk
// storage is exhausted — evicts the least frequently accessed object
// that is not in use ("implements a replacement policy that removes the
// least frequently accessed object").

#ifndef STAGGER_STORAGE_OBJECT_MANAGER_H_
#define STAGGER_STORAGE_OBJECT_MANAGER_H_

#include <optional>
#include <vector>

#include "disk/disk_array.h"
#include "storage/catalog.h"
#include "storage/layout.h"
#include "storage/media_object.h"
#include "util/result.h"

namespace stagger {

/// \brief Residency entry for one disk-resident object.
struct Residency {
  StaggeredLayout layout;
  /// Exact number of fragments stored per disk (for storage accounting).
  std::vector<int64_t> fragments_per_disk;
};

/// \brief Disk-residency tracking and LFU replacement for the striped
/// schemes (the VDR baseline keeps its own replica bookkeeping).
class ObjectManager {
 public:
  /// \param catalog            the database; must outlive the manager.
  /// \param disks              the disk farm; must outlive the manager.
  /// \param fragment_cylinders cylinders occupied by one fragment.
  ObjectManager(const Catalog* catalog, DiskArray* disks,
                int64_t fragment_cylinders);

  bool IsResident(ObjectId id) const {
    return entries_[static_cast<size_t>(id)].residency.has_value();
  }

  /// The placement of a resident object.
  /// Precondition: IsResident(id).
  const StaggeredLayout& LayoutOf(ObjectId id) const;

  /// Bumps the access-frequency counter (every request, resident or not).
  void RecordAccess(ObjectId id);
  int64_t AccessCount(ObjectId id) const {
    return entries_[static_cast<size_t>(id)].access_count;
  }

  /// Pins an object while a display or materialization uses it; pinned
  /// objects are never evicted.
  void Pin(ObjectId id);
  void Unpin(ObjectId id);
  int32_t PinCount(ObjectId id) const {
    return entries_[static_cast<size_t>(id)].pins;
  }

  /// Allocates storage for `id` under `layout`, evicting LFU victims as
  /// needed.  Fails with ResourceExhausted when even after evicting all
  /// unpinned objects the space does not suffice.
  Status MakeResident(ObjectId id, const StaggeredLayout& layout);

  /// Frees the object's storage.  Fails if pinned or not resident.
  Status Evict(ObjectId id);

  /// Least-frequently-accessed resident, unpinned object; NotFound when
  /// every resident object is pinned (or none are resident).
  Result<ObjectId> PickVictim() const;

  int32_t ResidentCount() const { return resident_count_; }
  int64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::optional<Residency> residency;
    int64_t access_count = 0;
    int32_t pins = 0;
  };

  /// Attempts the per-disk allocation; rolls back on failure.
  Status TryAllocate(const std::vector<int64_t>& fragments_per_disk);
  void Release(const std::vector<int64_t>& fragments_per_disk);

  const Catalog* catalog_;
  DiskArray* disks_;
  int64_t fragment_cylinders_;
  std::vector<Entry> entries_;
  int32_t resident_count_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace stagger

#endif  // STAGGER_STORAGE_OBJECT_MANAGER_H_
