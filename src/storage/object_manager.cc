#include "storage/object_manager.h"

#include <string>

namespace stagger {

ObjectManager::ObjectManager(const Catalog* catalog, DiskArray* disks,
                             int64_t fragment_cylinders)
    : catalog_(catalog), disks_(disks), fragment_cylinders_(fragment_cylinders),
      entries_(static_cast<size_t>(catalog->size())) {
  STAGGER_CHECK(fragment_cylinders_ >= 1);
}

const StaggeredLayout& ObjectManager::LayoutOf(ObjectId id) const {
  const Entry& e = entries_[static_cast<size_t>(id)];
  STAGGER_CHECK(e.residency.has_value()) << "object " << id << " is not resident";
  return e.residency->layout;
}

void ObjectManager::RecordAccess(ObjectId id) {
  ++entries_[static_cast<size_t>(id)].access_count;
}

void ObjectManager::Pin(ObjectId id) { ++entries_[static_cast<size_t>(id)].pins; }

void ObjectManager::Unpin(ObjectId id) {
  Entry& e = entries_[static_cast<size_t>(id)];
  STAGGER_CHECK(e.pins > 0) << "unbalanced Unpin of object " << id;
  --e.pins;
}

Status ObjectManager::TryAllocate(const std::vector<int64_t>& fragments_per_disk) {
  for (int32_t d = 0; d < disks_->num_disks(); ++d) {
    const int64_t cylinders = fragments_per_disk[static_cast<size_t>(d)] *
                              fragment_cylinders_;
    Status st = disks_->disk(d).AllocateStorage(cylinders);
    if (!st.ok()) {
      // Roll back the disks already charged.
      for (int32_t r = 0; r < d; ++r) {
        disks_->disk(r).FreeStorage(fragments_per_disk[static_cast<size_t>(r)] *
                                    fragment_cylinders_);
      }
      return st;
    }
  }
  return Status::OK();
}

void ObjectManager::Release(const std::vector<int64_t>& fragments_per_disk) {
  for (int32_t d = 0; d < disks_->num_disks(); ++d) {
    disks_->disk(d).FreeStorage(fragments_per_disk[static_cast<size_t>(d)] *
                                fragment_cylinders_);
  }
}

Status ObjectManager::MakeResident(ObjectId id, const StaggeredLayout& layout) {
  if (!catalog_->Contains(id)) {
    return Status::NotFound("object " + std::to_string(id) + " not in catalog");
  }
  Entry& e = entries_[static_cast<size_t>(id)];
  if (e.residency.has_value()) {
    return Status::AlreadyExists("object " + std::to_string(id) +
                                 " is already resident");
  }
  const MediaObject& obj = catalog_->Get(id);
  std::vector<int64_t> per_disk = layout.FragmentsPerDisk(obj.num_subobjects);

  // Evict LFU victims until the allocation fits.
  while (true) {
    Status st = TryAllocate(per_disk);
    if (st.ok()) break;
    Result<ObjectId> victim = PickVictim();
    if (!victim.ok()) {
      return Status::ResourceExhausted(
          "cannot make object " + std::to_string(id) +
          " resident: no evictable victims remain (" + st.message() + ")");
    }
    STAGGER_RETURN_NOT_OK(Evict(*victim));
  }

  e.residency = Residency{layout, std::move(per_disk)};
  ++resident_count_;
  return Status::OK();
}

Status ObjectManager::Evict(ObjectId id) {
  Entry& e = entries_[static_cast<size_t>(id)];
  if (!e.residency.has_value()) {
    return Status::FailedPrecondition("object " + std::to_string(id) +
                                      " is not resident");
  }
  if (e.pins > 0) {
    return Status::FailedPrecondition("object " + std::to_string(id) +
                                      " is pinned by active users");
  }
  Release(e.residency->fragments_per_disk);
  e.residency.reset();
  --resident_count_;
  ++evictions_;
  return Status::OK();
}

Result<ObjectId> ObjectManager::PickVictim() const {
  ObjectId best = kInvalidObject;
  int64_t best_count = 0;
  for (ObjectId id = 0; id < catalog_->size(); ++id) {
    const Entry& e = entries_[static_cast<size_t>(id)];
    if (!e.residency.has_value() || e.pins > 0) continue;
    if (best == kInvalidObject || e.access_count < best_count) {
      best = id;
      best_count = e.access_count;
    }
  }
  if (best == kInvalidObject) {
    return Status::NotFound("no evictable resident object");
  }
  return best;
}

}  // namespace stagger
