#include "storage/catalog.h"

namespace stagger {

ObjectId Catalog::Add(MediaObject object) {
  const ObjectId id = size();
  object.id = id;
  if (object.name.empty()) {
    object.name = "obj" + std::to_string(id);
  }
  objects_.push_back(std::move(object));
  return id;
}

Catalog Catalog::Uniform(int32_t count, int64_t num_subobjects,
                         Bandwidth display_bandwidth) {
  Catalog catalog;
  for (int32_t i = 0; i < count; ++i) {
    MediaObject obj;
    obj.display_bandwidth = display_bandwidth;
    obj.num_subobjects = num_subobjects;
    catalog.Add(std::move(obj));
  }
  return catalog;
}

Catalog Catalog::Mixed(const std::vector<MediaTypeSpec>& types) {
  Catalog catalog;
  for (const MediaTypeSpec& type : types) {
    for (int32_t i = 0; i < type.count; ++i) {
      MediaObject obj;
      obj.display_bandwidth = type.display_bandwidth;
      obj.num_subobjects = type.num_subobjects;
      if (!type.name_prefix.empty()) {
        obj.name = type.name_prefix + std::to_string(i);
      }
      catalog.Add(std::move(obj));
    }
  }
  return catalog;
}

}  // namespace stagger
