// The database catalog: descriptors of every multimedia object.  The
// full database permanently resides on tertiary store; the catalog is
// the authoritative list the object manager and schedulers consult.

#ifndef STAGGER_STORAGE_CATALOG_H_
#define STAGGER_STORAGE_CATALOG_H_

#include <string>
#include <vector>

#include "storage/media_object.h"
#include "util/result.h"

namespace stagger {

/// \brief Immutable-after-construction set of MediaObject descriptors.
class Catalog {
 public:
  /// Adds an object; its id is assigned sequentially and returned.
  ObjectId Add(MediaObject object);

  /// Builds the paper's single-media-type database: `count` objects,
  /// each with `num_subobjects` stripes at `display_bandwidth`.
  static Catalog Uniform(int32_t count, int64_t num_subobjects,
                         Bandwidth display_bandwidth);

  /// \brief One media type in a mixed database (Section 3.2's setting).
  struct MediaTypeSpec {
    std::string name_prefix;
    int32_t count = 0;
    int64_t num_subobjects = 0;
    Bandwidth display_bandwidth;
  };

  /// Builds a mixed-media database; object ids run type by type in the
  /// order given (e.g. Figure 5's Y / X / Z mix).
  static Catalog Mixed(const std::vector<MediaTypeSpec>& types);

  int32_t size() const { return static_cast<int32_t>(objects_.size()); }
  bool Contains(ObjectId id) const { return id >= 0 && id < size(); }

  const MediaObject& Get(ObjectId id) const {
    STAGGER_CHECK(Contains(id)) << "unknown object " << id;
    return objects_[static_cast<size_t>(id)];
  }

  const std::vector<MediaObject>& objects() const { return objects_; }

 private:
  std::vector<MediaObject> objects_;
};

}  // namespace stagger

#endif  // STAGGER_STORAGE_CATALOG_H_
