// Media-object model.  An object X is a sequence of n subobjects; each
// subobject is declustered into M_X fragments of one fixed system-wide
// size (Table 2 of the paper).  M_X = ceil(B_Display(X) / B_Disk).

#ifndef STAGGER_STORAGE_MEDIA_OBJECT_H_
#define STAGGER_STORAGE_MEDIA_OBJECT_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "util/units.h"

namespace stagger {

using ObjectId = int32_t;
constexpr ObjectId kInvalidObject = -1;

/// \brief Immutable description of one multimedia object.
struct MediaObject {
  ObjectId id = kInvalidObject;
  std::string name;
  /// Constant display-bandwidth requirement (B_Display(X)).
  Bandwidth display_bandwidth;
  /// Number of subobjects (stripes) the object is divided into.
  int64_t num_subobjects = 0;

  /// Degree of declustering for this object under effective disk
  /// bandwidth `b_disk`: M_X = ceil(B_Display / B_Disk).
  int32_t DegreeOfDeclustering(Bandwidth b_disk) const {
    STAGGER_DCHECK(b_disk.bits_per_sec() > 0);
    return static_cast<int32_t>(
        std::ceil(display_bandwidth.bits_per_sec() / b_disk.bits_per_sec() -
                  1e-9));
  }

  /// Total fragments = subobjects * M_X.
  int64_t NumFragments(Bandwidth b_disk) const {
    return num_subobjects * DegreeOfDeclustering(b_disk);
  }

  /// Size of the whole object given the system fragment size.
  DataSize TotalSize(DataSize fragment_size, Bandwidth b_disk) const {
    return fragment_size * NumFragments(b_disk);
  }

  /// Wall-clock time to display the object once: one time interval per
  /// subobject (each interval delivers one subobject at B_Display).
  SimTime DisplayTime(SimTime interval) const { return interval * num_subobjects; }
};

/// \brief Identifies fragment X_{i.j}: subobject i, fragment j.
struct FragmentId {
  ObjectId object = kInvalidObject;
  int64_t subobject = 0;
  int32_t fragment = 0;

  bool operator==(const FragmentId&) const = default;
};

}  // namespace stagger

#endif  // STAGGER_STORAGE_MEDIA_OBJECT_H_
