// Placement layouts: where each fragment of an object lives.
//
// Staggered striping (Section 3.2): fragment X_{i.j} of an object whose
// first fragment starts on disk p is placed on disk (p + i*k + j) mod D,
// where k is the system-wide stride.  Setting k = M_X yields simple
// striping (Section 3.1); assigning whole objects to one physical
// cluster yields the virtual-data-replication layout of [GS93]
// (equivalently k = D).
//
// This header also carries the Section 3.2.2 skew analysis: the number
// of distinct disks an object touches and the per-disk fragment-count
// balance, both governed by gcd(D, k).
//
// Parity extension (fault-tolerance layer, src/rebuild/): each
// subobject stripe may carry one parity fragment on the next
// consecutive disk after its data fragments, (p + i*k + M) mod D.  The
// parity disk is disjoint from the stripe whenever M + 1 <= D, and the
// augmented placement is exactly a staggered layout of window M + 1 —
// so mod-D contiguity, stride progression, and the gcd skew bounds all
// carry over unchanged with the wider window.

#ifndef STAGGER_STORAGE_LAYOUT_H_
#define STAGGER_STORAGE_LAYOUT_H_

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "storage/media_object.h"
#include "util/hot_path.h"
#include "util/result.h"
#include "util/units.h"

namespace stagger {

/// \brief Placement of one object under staggered striping.
class StaggeredLayout {
 public:
  /// \param num_disks   D, total disks; >= 1.
  /// \param start_disk  p, the disk holding fragment X_{0.0}.
  /// \param stride      k in [1, D].
  /// \param degree      M_X in [1, D]; with parity, M_X + 1 <= D so the
  ///                    parity disk never co-resides with the stripe.
  /// \param parity      each subobject carries a parity fragment on the
  ///                    disk after its last data fragment.
  static Result<StaggeredLayout> Create(int32_t num_disks, int32_t start_disk,
                                        int32_t stride, int32_t degree,
                                        bool parity = false);

  int32_t num_disks() const { return num_disks_; }
  int32_t start_disk() const { return start_disk_; }
  int32_t stride() const { return stride_; }
  int32_t degree() const { return degree_; }
  bool has_parity() const { return parity_; }
  /// Fragments stored per subobject: M_X data plus the optional parity.
  int32_t FragmentsPerSubobject() const {
    return degree_ + (parity_ ? 1 : 0);
  }

  /// Physical disk holding fragment X_{i.j}.  The stride walk repeats
  /// with period P = D/gcd(D, k), so the start disk of every subobject
  /// comes from a precomputed P-entry table; the residue i mod P is
  /// taken with a Lemire multiply-shift instead of hardware division —
  /// this sits in the scheduler's and the audits' hottest loops.
  STAGGER_HOT_PATH int32_t DiskFor(int64_t subobject, int32_t fragment) const {
    STAGGER_DCHECK(fragment >= 0 && fragment < degree_);
    const int32_t disk = RowStart(subobject) + fragment;
    return disk >= num_disks_ ? disk - num_disks_ : disk;
  }

  /// First disk of subobject i (X_{i.0}).
  STAGGER_HOT_PATH int32_t FirstDiskFor(int64_t subobject) const {
    return RowStart(subobject);
  }

  /// Physical disk holding subobject i's parity fragment: the disk
  /// after the stripe's last data fragment, (p + i*k + M) mod D.
  /// Precondition: has_parity().
  STAGGER_HOT_PATH int32_t ParityDiskFor(int64_t subobject) const {
    STAGGER_DCHECK(parity_);
    const int32_t disk = RowStart(subobject) + degree_;
    return disk >= num_disks_ ? disk - num_disks_ : disk;
  }

  /// Number of distinct disks touched by an object of `num_subobjects`
  /// stripes (the Section 3.2.2 "28 disks" example).  Includes parity
  /// disks when the layout carries parity.
  int32_t UniqueDisksUsed(int64_t num_subobjects) const;

  /// Fragments stored per disk for an object of `num_subobjects` stripes
  /// (index = physical disk).  Uneven counts == data skew.  Parity
  /// fragments are counted when the layout carries them, so storage
  /// accounting charges the parity overhead automatically.
  std::vector<int64_t> FragmentsPerDisk(int64_t num_subobjects) const;

  /// True when this (D, k) pair guarantees no data skew for objects that
  /// wrap the array: requires the walk {p + i*k mod D} to visit every
  /// residue class, i.e. gcd(D, k) == 1 — or the subobject count to be a
  /// multiple of D/gcd so the imbalance closes (the paper's GCD rule).
  bool IsSkewFree(int64_t num_subobjects) const;

 private:
  StaggeredLayout(int32_t num_disks, int32_t start_disk, int32_t stride,
                  int32_t degree, bool parity);

  /// subobject mod period_, by Lemire's multiply-shift when the value
  /// fits 32 bits (always, in practice).  Requires subobject >= 0.
  STAGGER_HOT_PATH uint32_t ResidueOf(uint64_t subobject) const {
#if defined(__SIZEOF_INT128__)
    __extension__ typedef unsigned __int128 Uint128;
    const uint64_t low = period_magic_ * subobject;
    return static_cast<uint32_t>(
        (static_cast<Uint128>(low) * static_cast<uint64_t>(period_)) >> 64);
#else
    return static_cast<uint32_t>(subobject % static_cast<uint64_t>(period_));
#endif
  }

  /// Disk of X_{i.0}: table load on the hot path, closed form for
  /// out-of-range subobject indices (negative or >= 2^32).
  STAGGER_HOT_PATH int32_t RowStart(int64_t subobject) const {
    if (period_ == 1) return start_disk_;
    if ((static_cast<uint64_t>(subobject) >> 32) == 0) {
      return (*row_first_)[ResidueOf(static_cast<uint64_t>(subobject))];
    }
    return static_cast<int32_t>(
        PositiveMod(start_disk_ + subobject * stride_, num_disks_));
  }

  int32_t num_disks_;
  int32_t start_disk_;
  int32_t stride_;
  int32_t degree_;
  bool parity_;
  /// D / gcd(D, k): distinct start disks of the stride walk.
  int32_t period_ = 1;
  /// ceil(2^64 / period_), the Lemire fastmod constant (unused when
  /// period_ == 1).
  uint64_t period_magic_ = 0;
  /// row_first_[r] == (p + r*k) mod D for r in [0, period_).  Shared so
  /// layout copies (catalog entries, audit tables) stay cheap.
  std::shared_ptr<const std::vector<int32_t>> row_first_;
};

/// \brief Placement of one object under virtual data replication: the
/// whole object lives in one physical cluster of `degree` disks, with
/// fragment j of every subobject on the cluster's j-th disk.
class ClusterLayout {
 public:
  /// \param num_disks    D.
  /// \param cluster      cluster index in [0, D/degree).
  /// \param degree       disks per cluster (M).
  static Result<ClusterLayout> Create(int32_t num_disks, int32_t cluster,
                                      int32_t degree);

  int32_t cluster() const { return cluster_; }
  int32_t degree() const { return degree_; }

  int32_t DiskFor(int64_t /*subobject*/, int32_t fragment) const {
    STAGGER_DCHECK(fragment >= 0 && fragment < degree_);
    return cluster_ * degree_ + fragment;
  }

 private:
  ClusterLayout(int32_t num_disks, int32_t cluster, int32_t degree)
      : num_disks_(num_disks), cluster_(cluster), degree_(degree) {}
  int32_t num_disks_;
  int32_t cluster_;
  int32_t degree_;
};

}  // namespace stagger

#endif  // STAGGER_STORAGE_LAYOUT_H_
