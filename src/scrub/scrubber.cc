#include "scrub/scrubber.h"

#include <algorithm>
#include <utility>

#include "rebuild/rebuild_manager.h"
#include "util/check.h"


namespace stagger {

Result<std::unique_ptr<Scrubber>> Scrubber::Create(DiskArray* disks,
                                                   const ScrubConfig& config,
                                                   WorkSource source) {
  if (config.intervals_per_stripe < 1) {
    return Status::InvalidArgument(
        "scrub rate must be >= 1 interval per stripe");
  }
  if (!source) {
    return Status::InvalidArgument("scrubber needs a work source");
  }
  return std::unique_ptr<Scrubber>(
      new Scrubber(disks, config, std::move(source)));
}

Scrubber::Scrubber(DiskArray* disks, ScrubConfig config, WorkSource source)
    : disks_(disks), config_(config), source_(std::move(source)) {}

void Scrubber::Refresh() {
  // The cycle position survives catalog churn: restarting at stripe 0
  // whenever an object lands or is evicted would re-verify the head of
  // the list forever and never complete a pass (so the pass-end orphan
  // sweep would never run).  Targets arrive sorted by object id, so the
  // cursor re-seats at the first object at or after the old position.
  ObjectId cursor_object = kInvalidObject;
  int64_t cursor_sub = 0;
  if (target_idx_ < targets_.size()) {
    cursor_object = targets_[target_idx_].object;
    cursor_sub = subobject_idx_;
  }
  targets_ = source_();
  // Empty objects contribute no stripes; dropping them keeps the
  // cursor's invariants trivial.
  targets_.erase(std::remove_if(targets_.begin(), targets_.end(),
                                [](const ScrubTarget& t) {
                                  return t.num_subobjects <= 0 || t.degree < 1;
                                }),
                 targets_.end());
  pass_stripes_ = 0;
  for (const ScrubTarget& t : targets_) pass_stripes_ += t.num_subobjects;
  target_idx_ = 0;
  subobject_idx_ = 0;
  if (cursor_object != kInvalidObject) {
    for (size_t i = 0; i < targets_.size(); ++i) {
      if (targets_[i].object < cursor_object) continue;
      target_idx_ = i;
      if (targets_[i].object == cursor_object) {
        subobject_idx_ =
            std::min(cursor_sub, targets_[i].num_subobjects - 1);
      }
      break;
    }
    // Every remaining object sorts before the old position: the cursor
    // wrapped with the churn; the next wrap still closes a full cycle.
  }
  pending_refresh_ = false;
}

bool Scrubber::AdvanceCursor() {
  ++subobject_idx_;
  if (subobject_idx_ < targets_[target_idx_].num_subobjects) return false;
  subobject_idx_ = 0;
  ++target_idx_;
  if (target_idx_ < targets_.size()) return false;
  target_idx_ = 0;
  return true;
}

int64_t Scrubber::RunIdle(int64_t interval, BackgroundGrant* grant) {
  if (pending_refresh_) Refresh();
  int64_t ops = 0;
  // Known-corrupt cells first, out of cursor order; the rate floor
  // below paces background verification, not repair of known errors.
  bool stop = false;
  ops += TargetedRepairs(grant, &stop);
  if (stop) return ops;
  // A previous sweep left orphans behind (their disks were busy in that
  // interval); retry with this interval's fresh grant rather than
  // waiting for the next pass wrap.
  if (pending_orphan_sweep_) {
    if (disks_->latent_errors().active()) {
      ops += OrphanSweep(grant);
    } else {
      pending_orphan_sweep_ = false;
    }
  }
  if (targets_.empty()) {
    // Nothing resident: every corrupt cell is an orphan.
    if (disks_->latent_errors().active()) ops += OrphanSweep(grant);
    return ops;
  }
  if (config_.intervals_per_stripe > 1 && last_scrub_interval_ >= 0 &&
      interval - last_scrub_interval_ < config_.intervals_per_stripe) {
    return ops;  // rate floor; not a stall
  }
  // At most one full pass per interval, so an uncapped grant over a
  // small catalog cannot loop forever.
  for (int64_t attempt = 0; attempt < pass_stripes_; ++attempt) {
    const StripeOutcome outcome = ScrubStripeAtCursor(grant);
    if (outcome == StripeOutcome::kBlocked) {
      // Cursor holds still: the same stripe retries next interval.
      ++metrics_.stalled_intervals;
      break;
    }
    const bool wrapped = AdvanceCursor();
    if (outcome != StripeOutcome::kSkippedUnavailable) {
      ++ops;
      last_scrub_interval_ = interval;
    }
    if (wrapped) {
      ++metrics_.passes_completed;
      if (disks_->latent_errors().active()) ops += OrphanSweep(grant);
      // The catalog may have churned during the pass; re-query before
      // starting the next one.
      pending_refresh_ = true;
      break;
    }
    if (outcome == StripeOutcome::kArchiveRestore) {
      break;  // the tertiary re-fetch consumes the rest of the interval
    }
    if (config_.intervals_per_stripe > 1) break;  // one stripe per N
  }
  return ops;
}

Scrubber::StripeOutcome Scrubber::ScrubStripeAtCursor(BackgroundGrant* grant) {
  return ScrubStripe(targets_[target_idx_], subobject_idx_, grant);
}

const ScrubTarget* Scrubber::FindCover(DiskId disk, int64_t sub) const {
  const int32_t d = disks_->num_disks();
  for (const ScrubTarget& t : targets_) {
    if (sub >= t.num_subobjects) continue;
    const int64_t base = static_cast<int64_t>(t.first_disk) +
                         sub * static_cast<int64_t>(t.stride);
    const int32_t members = t.degree + (t.parity ? 1 : 0);
    for (int32_t j = 0; j < members; ++j) {
      if (static_cast<DiskId>(PositiveMod(base + j, d)) == disk) return &t;
    }
  }
  return nullptr;
}

int64_t Scrubber::TargetedRepairs(BackgroundGrant* grant, bool* stop) {
  *stop = false;
  LatentErrorMap& latent = disks_->latent_errors();
  if (!latent.active()) return 0;
  // Snapshot the detected cells: Repair mutates the registry.
  std::vector<std::pair<DiskId, int64_t>> hot;
  for (const auto& [disk, rows] : latent.cells()) {
    for (const auto& [sub, cell] : rows) {
      if (cell.detected_interval >= 0) hot.emplace_back(disk, sub);
    }
  }
  int64_t ops = 0;
  for (const auto& [disk, sub] : hot) {
    // A stripe repaired earlier in this loop may have covered the cell.
    if (!latent.IsCorrupt(disk, sub)) continue;
    const ScrubTarget* cover = FindCover(disk, sub);
    if (cover == nullptr) {
      // Detected orphan (the object was evicted after a display read
      // surfaced the cell): one read remaps the unallocated region.
      if (!grant->CanRead(disk)) continue;
      grant->ReadSlot(disk);
      ++metrics_.verify_reads;
      latent.Repair(disk, sub);
      ++metrics_.orphans_repaired;
      ++metrics_.latent_errors_repaired;
      ++ops;
      continue;
    }
    const StripeOutcome outcome = ScrubStripe(*cover, sub, grant);
    if (outcome == StripeOutcome::kBlocked ||
        outcome == StripeOutcome::kSkippedUnavailable) {
      continue;  // busy or unavailable members; retry next interval
    }
    ++ops;
    if (!latent.IsCorrupt(disk, sub)) ++metrics_.targeted_repairs;
    if (outcome == StripeOutcome::kArchiveRestore) {
      *stop = true;  // the tertiary re-fetch consumes the interval
      break;
    }
  }
  return ops;
}

Scrubber::StripeOutcome Scrubber::ScrubStripe(const ScrubTarget& t,
                                              int64_t sub,
                                              BackgroundGrant* grant) {
  const int32_t d = disks_->num_disks();
  const int32_t members = t.degree + (t.parity ? 1 : 0);
  const int64_t base =
      static_cast<int64_t>(t.first_disk) + sub * static_cast<int64_t>(t.stride);

  // An unavailable member defers the stripe to the next pass — the
  // scrubber must not serialize a whole pass behind one outage.
  for (int32_t j = 0; j < members; ++j) {
    const DiskId slot = static_cast<DiskId>(PositiveMod(base + j, d));
    if (!disks_->IsAvailable(slot)) {
      ++metrics_.skipped_unavailable;
      return StripeOutcome::kSkippedUnavailable;
    }
  }
  // Verification is all-or-nothing: a half-read stripe proves nothing.
  if (grant->reads_remaining() < members) return StripeOutcome::kBlocked;
  for (int32_t j = 0; j < members; ++j) {
    const DiskId slot = static_cast<DiskId>(PositiveMod(base + j, d));
    if (!grant->CanRead(slot)) return StripeOutcome::kBlocked;
  }

  LatentErrorMap& latent = disks_->latent_errors();
  const bool latent_active = latent.active();
  // Corrupt members, by stripe slot.  Bounded by members; typically 0.
  std::vector<DiskId> corrupt;
  for (int32_t j = 0; j < members; ++j) {
    const DiskId slot = static_cast<DiskId>(PositiveMod(base + j, d));
    grant->ReadSlot(slot);
    ++metrics_.verify_reads;
    if (latent_active && latent.IsCorrupt(slot, sub)) {
      if (latent.MarkDetected(slot, sub)) ++metrics_.latent_errors_found;
      corrupt.push_back(slot);
    }
  }
  ++metrics_.stripes_scrubbed;

  if (corrupt.empty()) {
    if (t.parity) {
      // Content-model cross-check on the clean stripe: the data words
      // must XOR to the parity word.  A miss is a placement or content
      // bug, never expected.
      uint64_t x = 0;
      for (int32_t j = 0; j < t.degree; ++j) {
        x ^= FragmentWord(t.object, sub, j);
      }
      if (x != ParityWord(t.object, sub, t.degree)) ++metrics_.mismatches;
    }
    return StripeOutcome::kScrubbed;
  }

  if (corrupt.size() == 1 && t.parity) {
    // Same-interval parity reconstruction (the PR 3 degraded-read
    // path): the surviving members were just read, and the corrupt
    // member's read reservation doubles as its rewrite.
    latent.Repair(corrupt.front(), sub);
    ++metrics_.parity_repairs;
    ++metrics_.latent_errors_repaired;
    return StripeOutcome::kScrubbed;
  }

  // Multiple corruptions (or no parity): single parity cannot
  // reconstruct, so restore the stripe from the durable tertiary copy.
  for (const DiskId slot : corrupt) {
    latent.Repair(slot, sub);
    ++metrics_.latent_errors_repaired;
  }
  ++metrics_.archive_restores;
  return StripeOutcome::kArchiveRestore;
}

int64_t Scrubber::OrphanSweep(BackgroundGrant* grant) {
  LatentErrorMap& latent = disks_->latent_errors();
  // Collect first: Repair mutates the registry under iteration.
  std::vector<std::pair<DiskId, int64_t>> orphans;
  for (const auto& [disk, rows] : latent.cells()) {
    for (const auto& [sub, cell] : rows) {
      (void)cell;
      if (FindCover(disk, sub) == nullptr) orphans.emplace_back(disk, sub);
    }
  }
  int64_t repaired = 0;
  int64_t skipped = 0;
  for (const auto& [disk, sub] : orphans) {
    // One read verifies the unallocated region and remaps the bad cell.
    // Cells the grant cannot cover (busy or unavailable disk, cap)
    // retry next interval through pending_orphan_sweep_.  At a pass
    // wrap the skip is systematic, not transient: the sweep shares the
    // interval with the pass's final stripe, whose member reservations
    // the scrubber itself still holds — without the retry an orphan on
    // one of those disks would be skipped at EVERY wrap and never heal.
    if (!grant->CanRead(disk)) {
      ++skipped;
      continue;
    }
    grant->ReadSlot(disk);
    ++metrics_.verify_reads;
    if (latent.MarkDetected(disk, sub)) ++metrics_.latent_errors_found;
    latent.Repair(disk, sub);
    ++metrics_.orphans_repaired;
    ++metrics_.latent_errors_repaired;
    ++repaired;
  }
  pending_orphan_sweep_ = skipped > 0;
  return repaired;
}

Status Scrubber::AuditState() const {
  STAGGER_AUDIT_VERIFY(metrics_.mismatches == 0)
      << "; " << metrics_.mismatches
      << " clean stripes failed the content-model cross-check";
  if (!targets_.empty()) {
    STAGGER_AUDIT_VERIFY(target_idx_ < targets_.size())
        << "; scrub cursor target " << target_idx_ << " out of bounds";
    STAGGER_AUDIT_VERIFY(subobject_idx_ >= 0 &&
                         subobject_idx_ < targets_[target_idx_].num_subobjects)
        << "; scrub cursor row " << subobject_idx_ << " out of bounds";
  }
  return Status::OK();
}

}  // namespace stagger
