// Background stripe scrubbing: the subsystem that finds latent sector
// errors before a viewer (or a rebuild) does.
//
// The scrubber cycles over every resident object's stripes, reading
// each stripe's data fragments plus parity on idle bandwidth and
// verifying their content words (the simulator's stand-in for on-disk
// checksums).  A fragment whose media cell is corrupt
// (disk/latent_errors.h) fails verification and is repaired in the
// same interval:
//   * one corrupt fragment in a parity stripe — the PR 3 path: XOR the
//     surviving fragments with parity and rewrite the bad cell.  The
//     corrupt fragment's read reservation doubles as the rewrite (read
//     and write of one cell in one interval, like the rebuild's spare
//     write);
//   * two or more corrupt fragments (or no parity) — single parity
//     cannot reconstruct: restore the stripe from the tertiary archive
//     copy, modeled as repairing the cells and ending the scrubber's
//     interval (the re-fetch penalty);
//   * a corrupt cell no resident stripe covers (the object was evicted
//     or re-landed elsewhere) — found by the orphan sweep at the end of
//     each pass and repaired by remapping the unallocated region.
//
// Cells that are already *detected* — a display read's checksum caught
// them, or an earlier scrub read found them but could not repair in
// that interval — are repaired out of cursor order by the targeted
// path, before the background cycle continues.  Without it a known-bad
// cell would wait up to a full pass for the cursor to come around.
//
// The scrubber is a BackgroundConsumer: every read goes through the
// BackgroundGrant the shared arbiter (src/background/) hands out below
// rebuild priority, so scrubbing never takes a disk from display
// traffic or from an active rebuild — the starvation floor alone
// guarantees it eventually runs under a rebuild storm.

#ifndef STAGGER_SCRUB_SCRUBBER_H_
#define STAGGER_SCRUB_SCRUBBER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "background/background_budget.h"
#include "disk/disk_array.h"
#include "storage/media_object.h"
#include "util/result.h"

namespace stagger {

/// \brief One resident object's stripes, as the scrubber walks them.
///
/// Row s of the object maps data fragment j to slot
/// (first_disk + s*stride + j) mod D and parity to
/// (first_disk + s*stride + degree) mod D — the staggered layout's
/// placement function, flattened so the scrubber needs no layout
/// objects.
struct ScrubTarget {
  ObjectId object = kInvalidObject;
  int64_t num_subobjects = 0;
  int32_t degree = 0;      ///< M_X: data fragments per stripe
  int32_t first_disk = 0;  ///< slot of X_{0.0}
  int32_t stride = 0;      ///< k: row-to-row rotation
  bool parity = false;     ///< stripe carries a parity fragment
};

/// \brief Scrub pacing.
struct ScrubConfig {
  /// At 1, the scrubber verifies as many stripes per idle interval as
  /// its grant allows; at N > 1 it verifies at most one stripe every N
  /// intervals (a rate floor for latency-sensitive deployments).
  int64_t intervals_per_stripe = 1;
};

/// \brief Counters reported by the scrubber.
struct ScrubMetrics {
  int64_t stripes_scrubbed = 0;
  int64_t passes_completed = 0;  ///< full cycles over every target
  /// Corrupt cells first detected by a scrub read.
  int64_t latent_errors_found = 0;
  /// Corrupt cells repaired by the scrubber (all three repair paths).
  int64_t latent_errors_repaired = 0;
  int64_t parity_repairs = 0;    ///< same-interval parity reconstructions
  int64_t archive_restores = 0;  ///< stripes restored from tertiary
  int64_t orphans_repaired = 0;  ///< cells outside every resident stripe
  /// Corrupt cells repaired by the targeted path (detected by a display
  /// read or an earlier scrub, then repaired out of cursor order).
  int64_t targeted_repairs = 0;
  int64_t verify_reads = 0;
  /// Intervals where the scrubber wanted a stripe but the grant (cap,
  /// busy disks) could not cover it.
  int64_t stalled_intervals = 0;
  /// Stripes skipped because a member disk was unavailable; re-checked
  /// next pass.
  int64_t skipped_unavailable = 0;
  /// Clean stripes whose data/parity words failed the content-model
  /// cross-check.  Any non-zero value is a bug.
  int64_t mismatches = 0;
};

/// \brief Cyclic background verifier of stripe content words.
///
/// Single-threaded, driven from the scheduler tick via the background
/// budget.
class Scrubber : public BackgroundConsumer {
 public:
  /// Re-queried at every pass boundary and after Invalidate(); must
  /// return each resident object at most once.
  using WorkSource = std::function<std::vector<ScrubTarget>()>;

  static Result<std::unique_ptr<Scrubber>> Create(DiskArray* disks,
                                                  const ScrubConfig& config,
                                                  WorkSource source);

  /// Flags the target list stale (an object landed or was evicted); the
  /// scrubber re-queries the work source and restarts its cycle at the
  /// next opportunity.
  void Invalidate() { pending_refresh_ = true; }

  // BackgroundConsumer:
  const char* name() const override { return "scrub"; }
  bool HasWork() const override {
    return pending_refresh_ || !targets_.empty() ||
           disks_->latent_errors().active();
  }
  int64_t RunIdle(int64_t interval, BackgroundGrant* grant) override;

  const ScrubMetrics& metrics() const { return metrics_; }
  const ScrubConfig& config() const { return config_; }

  /// Internal-consistency audit: cursor in bounds, zero content-model
  /// mismatches.
  Status AuditState() const;

 private:
  Scrubber(DiskArray* disks, ScrubConfig config, WorkSource source);

  /// Re-queries the work source and restarts the cycle.
  void Refresh();
  /// Advances the stripe cursor; true when it wrapped (pass complete).
  bool AdvanceCursor();
  /// Verifies (and if needed repairs) one stripe.
  enum class StripeOutcome { kScrubbed, kSkippedUnavailable, kBlocked,
                             kArchiveRestore };
  StripeOutcome ScrubStripe(const ScrubTarget& t, int64_t sub,
                            BackgroundGrant* grant);
  StripeOutcome ScrubStripeAtCursor(BackgroundGrant* grant);
  /// The target whose row-`sub` stripe stores a fragment on `disk`, or
  /// nullptr when no resident stripe covers the cell.
  const ScrubTarget* FindCover(DiskId disk, int64_t sub) const;
  /// Out-of-cursor-order repair of already-detected corrupt cells (a
  /// display read's checksum surfaced them); sets *stop when a repair
  /// escalated to an archive restore, which ends the interval.
  int64_t TargetedRepairs(BackgroundGrant* grant, bool* stop);
  /// Detects and repairs corrupt cells no target covers; returns cells
  /// repaired.  Orphans the grant could not cover (busy or unavailable
  /// disk, cap) re-arm pending_orphan_sweep_ so the sweep retries next
  /// interval instead of waiting a whole pass.
  int64_t OrphanSweep(BackgroundGrant* grant);

  DiskArray* disks_;
  ScrubConfig config_;
  WorkSource source_;
  std::vector<ScrubTarget> targets_;
  /// Stripes in the current target list (pass length).
  int64_t pass_stripes_ = 0;
  size_t target_idx_ = 0;
  int64_t subobject_idx_ = 0;
  bool pending_refresh_ = true;
  /// An orphan sweep left cells behind (their disks were busy that
  /// interval — at a pass wrap the final stripe's own reservations are
  /// still held, so this is the common case) and must retry.
  bool pending_orphan_sweep_ = false;
  int64_t last_scrub_interval_ = -1;
  ScrubMetrics metrics_;
};

}  // namespace stagger

#endif  // STAGGER_SCRUB_SCRUBBER_H_
