// A deterministic schedule of disk faults.  The paper assumes all D
// disks stay healthy for the life of a display; the fault subsystem
// perturbs that assumption reproducibly so degraded-mode scheduling
// (core/interval_scheduler.h DegradedPolicy, baseline/vdr_server.h
// failover) can be exercised and regression-tested.
//
// A plan is a time-ordered list of events over the disks of one array:
//   * fail    — media loss; the disk rejects reads until an explicit
//               recover event (operator replacement + rebuild);
//   * stall   — transient unavailability for a fixed duration; the disk
//               keeps its data but blows its T_switch budget, so reads
//               issued during the stall miss their interval deadline.
//               Recovery is implicit at `at + duration`;
//   * degrade — the disk runs at a bandwidth fraction (a straggler)
//               for a fixed duration; reads that no longer fit the
//               interval go through the degraded ladder.  Recovery is
//               implicit at `at + duration`;
//   * latent  — a subobject range on the disk silently returns corrupt
//               fragment content until read (checksum), scrubbed, or
//               rebuilt away.  Orthogonal to health: the disk keeps
//               serving;
//   * recover — restores a failed disk to healthy.
//
// Correlated faults: a plan may declare *failure domains* (enclosures,
// racks) — disjoint disk groups — and target a whole domain with one
// fail/stall/degrade/recover line, modeling a shared power feed or
// backplane taking every member out at once.
//
// Plans serialize to a line-oriented text format (see ToString/Parse
// and docs/fault_injection.md) so failure scenarios can live in test
// fixtures and be replayed bit-identically.

#ifndef STAGGER_FAULT_FAULT_PLAN_H_
#define STAGGER_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "disk/disk.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/units.h"

namespace stagger {

/// \brief What happens to a disk at a plan event.
enum class FaultKind {
  kFail,         ///< media loss until an explicit recover
  kStall,        ///< transient; implicit recovery after `duration`
  kDegrade,      ///< bandwidth fraction; implicit recovery after `duration`
  kLatentError,  ///< corrupt subobject range; repaired by scrub/rebuild
  kRecover,      ///< failed disk returns to service
};

const char* FaultKindName(FaultKind kind);

/// \brief One scheduled fault event.
struct FaultEvent {
  SimTime at;
  FaultKind kind = FaultKind::kFail;
  DiskId disk = 0;
  /// Stalls and degrades: the disk recovers at `at + duration`.
  SimTime duration;
  /// Degrades only: bandwidth percentage in [1, 99].
  int32_t percent = 0;
  /// Latent errors only: corrupt subobject rows [sub_lo, sub_hi].
  int64_t sub_lo = 0;
  int64_t sub_hi = 0;
  /// >= 0: group event — targets every disk of that failure domain and
  /// `disk` is meaningless.  Latent errors are never group events.
  int32_t domain = -1;
};

/// \brief Parameters of the seeded chaos generator (Generate()).
///
/// Rates are expressed as per-disk mean time between events: over
/// `horizon` the generator draws about D * horizon / mtbf events of
/// each kind.  A zero mtbf disables that kind.
struct ChaosParams {
  SimTime horizon;

  /// Whole-disk failures (always paired with a recover at the outage
  /// end, so every generated plan eventually heals).
  SimTime mtbf;
  SimTime mttr;  ///< mean outage duration (fail -> recover)

  /// Transient stalls.
  SimTime stall_mtbf;
  SimTime mean_stall;

  /// Bandwidth degradations.
  SimTime degrade_mtbf;
  SimTime mean_degrade;
  int32_t min_degrade_percent = 30;
  int32_t max_degrade_percent = 80;

  /// Latent sector errors.  Each event corrupts a run of 1 to
  /// `max_latent_run` subobject rows uniformly placed in
  /// [0, subobject_space).
  SimTime latent_mtbf;
  int64_t subobject_space = 0;
  int64_t max_latent_run = 1;

  /// Failure domains: disks are partitioned into `num_domains`
  /// contiguous enclosures, and each fail/stall/degrade event targets a
  /// whole enclosure with probability `domain_event_fraction`.
  int32_t num_domains = 0;
  double domain_event_fraction = 0.25;
};

/// \brief A validated, replayable schedule of disk faults.
class FaultPlan {
 public:
  FaultPlan() = default;

  // Builder API; events may be appended in any order — Validate() and
  // the injector sort by time.
  FaultPlan& FailAt(DiskId disk, SimTime at);
  FaultPlan& StallAt(DiskId disk, SimTime at, SimTime duration);
  FaultPlan& DegradeAt(DiskId disk, SimTime at, SimTime duration,
                       int32_t percent);
  FaultPlan& LatentAt(DiskId disk, SimTime at, int64_t sub_lo, int64_t sub_hi);
  FaultPlan& RecoverAt(DiskId disk, SimTime at);

  /// Declares a failure domain (enclosure) over `disks` and returns its
  /// id for the *DomainAt builders.  Domains must be disjoint.
  int32_t AddDomain(std::vector<DiskId> disks);
  FaultPlan& FailDomainAt(int32_t domain, SimTime at);
  FaultPlan& StallDomainAt(int32_t domain, SimTime at, SimTime duration);
  FaultPlan& DegradeDomainAt(int32_t domain, SimTime at, SimTime duration,
                             int32_t percent);
  FaultPlan& RecoverDomainAt(int32_t domain, SimTime at);

  const std::vector<std::vector<DiskId>>& domains() const { return domains_; }

  /// Checks the plan against an array of `num_disks` drives: ids in
  /// range, times non-negative, stall/degrade durations positive,
  /// degrade percent in [1, 99], latent ranges well-formed, domains
  /// disjoint and in range, and the per-disk event sequence consistent
  /// after expanding group events (fail/stall/degrade only while
  /// healthy, recover only while failed; stalls and degrades recover
  /// implicitly at window end).  Two events on one disk at the same
  /// instant replay in the deterministic apply order recover < fail <
  /// stall < degrade < latent — a same-time `recover` + `fail` pair is
  /// a legal back-to-back outage — but exact duplicates (same instant,
  /// same kind, same disk) are rejected.
  Status Validate(int32_t num_disks) const;

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Events sorted by (time, target, apply rank); group events are NOT
  /// expanded (one entry per plan line — the serialization order).
  /// Group targets order after all single-disk targets.
  std::vector<FaultEvent> Sorted() const;

  /// Sorted() with every group event expanded into one event per domain
  /// member — the order the injector applies events in.  Precondition:
  /// domain indices are in range (Validate() checks them).
  std::vector<FaultEvent> ExpandedSorted() const;

  /// Line-oriented text form: first the domain declarations, then one
  /// event per line:
  ///   domain <id> <disk> <disk> ...
  ///   <micros> fail <target>
  ///   <micros> stall <target> <duration_micros>
  ///   <micros> degrade <target> <duration_micros> <percent>
  ///   <micros> latent <disk> <sub_lo> <sub_hi>
  ///   <micros> recover <target>
  /// where <target> is a disk id or `@<domain>`.  Event lines are
  /// emitted in Sorted() order; '#' starts a comment.
  std::string ToString() const;

  /// Inverse of ToString(); blank lines and '#' comments are skipped.
  static Result<FaultPlan> Parse(const std::string& text);

  /// Deterministic random plan: `num_failures` fail/recover pairs and
  /// `num_stalls` stalls, uniformly placed over [0, horizon), with
  /// exponential outage / stall durations.  Events that would violate
  /// per-disk consistency (e.g. a second failure inside an open outage)
  /// are re-drawn, so the result always passes Validate().
  static FaultPlan Random(Rng* rng, int32_t num_disks, SimTime horizon,
                          int32_t num_failures, int32_t num_stalls,
                          SimTime mean_outage, SimTime mean_stall);

  /// Seeded chaos generator: draws fail/recover pairs, stalls,
  /// degrades, and latent errors at the MTBF-driven rates of `params`
  /// over `params.horizon`, optionally correlated across contiguous
  /// failure domains.  Unavailability windows are kept disjoint per
  /// disk, so the result always passes Validate(); serialize it with
  /// ToString() to replay any chaos run from its plan text.
  static FaultPlan Generate(Rng* rng, int32_t num_disks,
                            const ChaosParams& params);

 private:
  std::vector<FaultEvent> events_;
  std::vector<std::vector<DiskId>> domains_;
};

}  // namespace stagger

#endif  // STAGGER_FAULT_FAULT_PLAN_H_
