// A deterministic schedule of disk faults.  The paper assumes all D
// disks stay healthy for the life of a display; the fault subsystem
// perturbs that assumption reproducibly so degraded-mode scheduling
// (core/interval_scheduler.h DegradedPolicy, baseline/vdr_server.h
// failover) can be exercised and regression-tested.
//
// A plan is a time-ordered list of events over the disks of one array:
//   * fail    — media loss; the disk rejects reads until an explicit
//               recover event (operator replacement + rebuild);
//   * stall   — transient unavailability for a fixed duration; the disk
//               keeps its data but blows its T_switch budget, so reads
//               issued during the stall miss their interval deadline.
//               Recovery is implicit at `at + duration`;
//   * recover — restores a failed disk to healthy.
//
// Plans serialize to a line-oriented text format (see ToString/Parse
// and docs/fault_injection.md) so failure scenarios can live in test
// fixtures and be replayed bit-identically.

#ifndef STAGGER_FAULT_FAULT_PLAN_H_
#define STAGGER_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "disk/disk.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/units.h"

namespace stagger {

/// \brief What happens to a disk at a plan event.
enum class FaultKind {
  kFail,     ///< media loss until an explicit recover
  kStall,    ///< transient; implicit recovery after `duration`
  kRecover,  ///< failed disk returns to service
};

const char* FaultKindName(FaultKind kind);

/// \brief One scheduled fault event.
struct FaultEvent {
  SimTime at;
  FaultKind kind = FaultKind::kFail;
  DiskId disk = 0;
  /// Stalls only: the disk recovers at `at + duration`.
  SimTime duration;
};

/// \brief A validated, replayable schedule of disk faults.
class FaultPlan {
 public:
  FaultPlan() = default;

  // Builder API; events may be appended in any order — Validate() and
  // the injector sort by time.
  FaultPlan& FailAt(DiskId disk, SimTime at);
  FaultPlan& StallAt(DiskId disk, SimTime at, SimTime duration);
  FaultPlan& RecoverAt(DiskId disk, SimTime at);

  /// Checks the plan against an array of `num_disks` drives: ids in
  /// range, times non-negative, stall durations positive, and the
  /// per-disk event sequence consistent (fail only while healthy,
  /// recover only while failed, stalls only while healthy and never
  /// overlapping a failure window or another stall).  Two events on one
  /// disk at the same instant replay in the deterministic apply order
  /// recover < fail < stall — a same-time `recover` + `fail` pair is a
  /// legal back-to-back outage — but exact duplicates (same instant,
  /// same kind) are rejected.
  Status Validate(int32_t num_disks) const;

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Events sorted by (time, disk, apply rank) — the order the injector
  /// applies them in.  Same-instant ties on one disk resolve recover
  /// before fail before stall.
  std::vector<FaultEvent> Sorted() const;

  /// Line-oriented text form, one event per line:
  ///   <micros> fail <disk>
  ///   <micros> stall <disk> <duration_micros>
  ///   <micros> recover <disk>
  /// Lines are emitted in Sorted() order; '#' starts a comment.
  std::string ToString() const;

  /// Inverse of ToString(); blank lines and '#' comments are skipped.
  static Result<FaultPlan> Parse(const std::string& text);

  /// Deterministic random plan: `num_failures` fail/recover pairs and
  /// `num_stalls` stalls, uniformly placed over [0, horizon), with
  /// exponential outage / stall durations.  Events that would violate
  /// per-disk consistency (e.g. a second failure inside an open outage)
  /// are re-drawn, so the result always passes Validate().
  static FaultPlan Random(Rng* rng, int32_t num_disks, SimTime horizon,
                          int32_t num_failures, int32_t num_stalls,
                          SimTime mean_outage, SimTime mean_stall);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace stagger

#endif  // STAGGER_FAULT_FAULT_PLAN_H_
