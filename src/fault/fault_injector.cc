#include "fault/fault_injector.h"

#include <utility>

#include "util/check.h"

namespace stagger {

Result<std::unique_ptr<FaultInjector>> FaultInjector::Create(Simulator* sim,
                                                             DiskArray* disks,
                                                             FaultPlan plan) {
  STAGGER_RETURN_NOT_OK(plan.Validate(disks->num_disks()));
  for (const FaultEvent& e : plan.events()) {
    if (e.at < sim->Now()) {
      return Status::FailedPrecondition(
          "fault plan event at " + e.at.ToString() +
          " is in the simulated past; attach the injector before running");
    }
  }
  return std::unique_ptr<FaultInjector>(
      new FaultInjector(sim, disks, std::move(plan)));
}

FaultInjector::FaultInjector(Simulator* sim, DiskArray* disks, FaultPlan plan)
    : sim_(sim), disks_(disks), plan_(std::move(plan)) {
  ScheduleAll();
}

void FaultInjector::ScheduleAll() {
  // Group events are expanded here so listeners see one notification
  // per affected disk, exactly as if each member had its own plan line.
  for (const FaultEvent& e : plan_.ExpandedSorted()) {
    sim_->ScheduleAt(e.at, [this, e] { Apply(e); }, kFaultEventPriority);
    if (e.kind == FaultKind::kStall) {
      sim_->ScheduleAt(e.at + e.duration,
                       [this, disk = e.disk] { EndStall(disk); },
                       kFaultEventPriority);
    } else if (e.kind == FaultKind::kDegrade) {
      sim_->ScheduleAt(e.at + e.duration,
                       [this, disk = e.disk] { EndDegrade(disk); },
                       kFaultEventPriority);
    }
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kFail:
      disks_->FailDisk(event.disk);
      ++metrics_.failures_injected;
      Notify(on_down_, event.disk);
      break;
    case FaultKind::kStall:
      disks_->StallDisk(event.disk);
      ++metrics_.stalls_injected;
      Notify(on_down_, event.disk);
      break;
    case FaultKind::kDegrade:
      disks_->DegradeDisk(event.disk, event.percent);
      ++metrics_.degrades_injected;
      Notify(on_down_, event.disk);
      break;
    case FaultKind::kLatentError:
      // Silent by definition: the media goes bad with no health change
      // and no listener notification — readers discover it later.
      metrics_.latent_errors_injected +=
          disks_->latent_errors().Inject(event.disk, event.sub_lo, event.sub_hi);
      break;
    case FaultKind::kRecover:
      disks_->RecoverDisk(event.disk);
      ++metrics_.recoveries_injected;
      Notify(on_up_, event.disk);
      break;
  }
}

void FaultInjector::EndStall(DiskId disk) {
  // Validate() guarantees no fault event lands inside a stall window,
  // so the disk is still stalled here.
  STAGGER_CHECK(disks_->disk(disk).health() == DiskHealth::kStalled)
      << "disk " << disk << " is not stalled at its stall-end event";
  disks_->RecoverDisk(disk);
  ++metrics_.recoveries_injected;
  Notify(on_up_, disk);
}

void FaultInjector::EndDegrade(DiskId disk) {
  STAGGER_CHECK(disks_->disk(disk).health() == DiskHealth::kDegraded)
      << "disk " << disk << " is not degraded at its degrade-end event";
  disks_->RecoverDisk(disk);
  ++metrics_.recoveries_injected;
  Notify(on_up_, disk);
}

void FaultInjector::Notify(const std::vector<Listener>& listeners,
                           DiskId disk) {
  const SimTime now = sim_->Now();
  for (const Listener& fn : listeners) fn(disk, now);
}

}  // namespace stagger
