// Replays a FaultPlan on the event kernel against a live DiskArray.
//
// At each plan event the injector flips the target disk's health
// (disk/disk.h) and notifies registered listeners.  The striped
// scheduler needs no listener — it consults disk availability every
// interval — but cluster-structured servers (baseline/vdr_server.h)
// subscribe to map disk outages onto cluster failovers.
//
// Fault events are scheduled at priority kFaultEventPriority (< 0), so
// a fault landing exactly on an interval boundary is applied *before*
// that interval's scheduling decisions — deterministically.

#ifndef STAGGER_FAULT_FAULT_INJECTOR_H_
#define STAGGER_FAULT_FAULT_INJECTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "disk/disk_array.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace stagger {

/// \brief Counters reported by the injector.
struct FaultInjectorMetrics {
  int64_t failures_injected = 0;
  int64_t stalls_injected = 0;
  int64_t degrades_injected = 0;
  /// Corrupt media cells created (latent events, after de-duplication
  /// against cells already corrupt).
  int64_t latent_errors_injected = 0;
  /// Explicit + implicit (stall/degrade window end).
  int64_t recoveries_injected = 0;
};

/// \brief Deterministic fault-plan replayer.
class FaultInjector {
 public:
  /// Scheduling priority of fault events; more negative than any other
  /// priority in the system so health changes precede same-instant
  /// scheduler ticks.
  static constexpr int kFaultEventPriority = -100;

  /// Invoked with the affected disk and the current simulated time.
  using Listener = std::function<void(DiskId, SimTime)>;

  /// Validates `plan` against `disks` and schedules every event (plus
  /// the implicit stall recoveries) on `sim`.  All pointees must
  /// outlive the injector.  Events whose time has already passed are
  /// rejected, so create the injector before running the simulation.
  static Result<std::unique_ptr<FaultInjector>> Create(Simulator* sim,
                                                       DiskArray* disks,
                                                       FaultPlan plan);

  /// Registers a callback for a disk going down (failure or stall
  /// start).  Listeners run in registration order.
  void OnDown(Listener listener) { on_down_.push_back(std::move(listener)); }
  /// Registers a callback for a disk returning to service.
  void OnUp(Listener listener) { on_up_.push_back(std::move(listener)); }

  const FaultInjectorMetrics& metrics() const { return metrics_; }
  const FaultPlan& plan() const { return plan_; }
  /// Disks currently failed or stalled.
  int32_t unavailable_disks() const { return disks_->UnavailableCount(); }

 private:
  FaultInjector(Simulator* sim, DiskArray* disks, FaultPlan plan);

  void ScheduleAll();
  void Apply(const FaultEvent& event);
  void EndStall(DiskId disk);
  void EndDegrade(DiskId disk);
  void Notify(const std::vector<Listener>& listeners, DiskId disk);

  Simulator* sim_;
  DiskArray* disks_;
  FaultPlan plan_;
  std::vector<Listener> on_down_;
  std::vector<Listener> on_up_;
  FaultInjectorMetrics metrics_;
};

}  // namespace stagger

#endif  // STAGGER_FAULT_FAULT_INJECTOR_H_
