#include "fault/fault_plan.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "util/check.h"

namespace stagger {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFail: return "fail";
    case FaultKind::kStall: return "stall";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kLatentError: return "latent";
    case FaultKind::kRecover: return "recover";
  }
  return "unknown";
}

FaultPlan& FaultPlan::FailAt(DiskId disk, SimTime at) {
  events_.push_back(FaultEvent{at, FaultKind::kFail, disk, SimTime::Zero()});
  return *this;
}

FaultPlan& FaultPlan::StallAt(DiskId disk, SimTime at, SimTime duration) {
  events_.push_back(FaultEvent{at, FaultKind::kStall, disk, duration});
  return *this;
}

FaultPlan& FaultPlan::DegradeAt(DiskId disk, SimTime at, SimTime duration,
                                int32_t percent) {
  FaultEvent e{at, FaultKind::kDegrade, disk, duration};
  e.percent = percent;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::LatentAt(DiskId disk, SimTime at, int64_t sub_lo,
                               int64_t sub_hi) {
  FaultEvent e{at, FaultKind::kLatentError, disk, SimTime::Zero()};
  e.sub_lo = sub_lo;
  e.sub_hi = sub_hi;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::RecoverAt(DiskId disk, SimTime at) {
  events_.push_back(FaultEvent{at, FaultKind::kRecover, disk, SimTime::Zero()});
  return *this;
}

int32_t FaultPlan::AddDomain(std::vector<DiskId> disks) {
  domains_.push_back(std::move(disks));
  return static_cast<int32_t>(domains_.size()) - 1;
}

namespace {

FaultEvent DomainEvent(SimTime at, FaultKind kind, int32_t domain,
                       SimTime duration) {
  FaultEvent e{at, kind, /*disk=*/0, duration};
  e.domain = domain;
  return e;
}

}  // namespace

FaultPlan& FaultPlan::FailDomainAt(int32_t domain, SimTime at) {
  events_.push_back(DomainEvent(at, FaultKind::kFail, domain, SimTime::Zero()));
  return *this;
}

FaultPlan& FaultPlan::StallDomainAt(int32_t domain, SimTime at,
                                    SimTime duration) {
  events_.push_back(DomainEvent(at, FaultKind::kStall, domain, duration));
  return *this;
}

FaultPlan& FaultPlan::DegradeDomainAt(int32_t domain, SimTime at,
                                      SimTime duration, int32_t percent) {
  FaultEvent e = DomainEvent(at, FaultKind::kDegrade, domain, duration);
  e.percent = percent;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::RecoverDomainAt(int32_t domain, SimTime at) {
  events_.push_back(
      DomainEvent(at, FaultKind::kRecover, domain, SimTime::Zero()));
  return *this;
}

namespace {

/// Apply rank for events sharing a disk and an instant: a recover ends
/// the old outage before a new fail or stall opens the next one, so a
/// back-to-back `recover` + `fail` pair at the same timestamp replays
/// deterministically.
int ApplyRank(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRecover: return 0;
    case FaultKind::kFail: return 1;
    case FaultKind::kStall: return 2;
    case FaultKind::kDegrade: return 3;
    case FaultKind::kLatentError: return 4;
  }
  return 5;
}

/// Sort key placing group targets after every single-disk target, so
/// serialization order is stable no matter how the plan was built.
int64_t TargetRank(const FaultEvent& e) {
  return e.domain >= 0 ? 1'000'000'000 + static_cast<int64_t>(e.domain)
                       : static_cast<int64_t>(e.disk);
}

void SortEvents(std::vector<FaultEvent>* events) {
  std::stable_sort(events->begin(), events->end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     const int64_t ta = TargetRank(a);
                     const int64_t tb = TargetRank(b);
                     if (ta != tb) return ta < tb;
                     return ApplyRank(a.kind) < ApplyRank(b.kind);
                   });
}

}  // namespace

std::vector<FaultEvent> FaultPlan::Sorted() const {
  std::vector<FaultEvent> sorted = events_;
  SortEvents(&sorted);
  return sorted;
}

std::vector<FaultEvent> FaultPlan::ExpandedSorted() const {
  std::vector<FaultEvent> expanded;
  expanded.reserve(events_.size());
  for (const FaultEvent& e : events_) {
    if (e.domain < 0) {
      expanded.push_back(e);
      continue;
    }
    STAGGER_CHECK(e.domain < static_cast<int32_t>(domains_.size()))
        << "fault event targets undeclared domain " << e.domain;
    for (const DiskId member : domains_[static_cast<size_t>(e.domain)]) {
      FaultEvent single = e;
      single.disk = member;
      single.domain = -1;
      expanded.push_back(single);
    }
  }
  SortEvents(&expanded);
  return expanded;
}

Status FaultPlan::Validate(int32_t num_disks) const {
  // Domains first: disjoint, non-empty, members in range — expansion
  // below depends on them being well-formed.
  std::set<DiskId> domain_members;
  for (size_t d = 0; d < domains_.size(); ++d) {
    const std::string who = "failure domain " + std::to_string(d);
    if (domains_[d].empty()) {
      return Status::InvalidArgument(who + " is empty");
    }
    for (const DiskId disk : domains_[d]) {
      if (disk < 0 || disk >= num_disks) {
        return Status::InvalidArgument(
            who + " contains nonexistent disk " + std::to_string(disk));
      }
      if (!domain_members.insert(disk).second) {
        return Status::InvalidArgument(
            who + " overlaps another domain at disk " + std::to_string(disk));
      }
    }
  }
  for (const FaultEvent& e : events_) {
    if (e.domain >= 0) {
      if (e.domain >= static_cast<int32_t>(domains_.size())) {
        return Status::InvalidArgument(
            "fault event targets undeclared domain " + std::to_string(e.domain));
      }
      if (e.kind == FaultKind::kLatentError) {
        return Status::InvalidArgument(
            "latent errors are media-local and cannot target a domain");
      }
    }
  }

  // Per-disk sweep over the time-sorted expanded events, replaying the
  // health machine each event would drive.  `transient_until` tracks
  // the open stall's or degrade's implicit recovery.
  std::map<DiskId, std::vector<FaultEvent>> per_disk;
  for (const FaultEvent& e : ExpandedSorted()) {
    if (e.disk < 0 || e.disk >= num_disks) {
      return Status::InvalidArgument(
          "fault event targets nonexistent disk " + std::to_string(e.disk));
    }
    if (e.at < SimTime::Zero()) {
      return Status::InvalidArgument("fault event time must be >= 0");
    }
    if ((e.kind == FaultKind::kStall || e.kind == FaultKind::kDegrade) &&
        e.duration <= SimTime::Zero()) {
      return Status::InvalidArgument(std::string(FaultKindName(e.kind)) +
                                     " duration must be positive");
    }
    if (e.kind == FaultKind::kDegrade && (e.percent < 1 || e.percent > 99)) {
      return Status::InvalidArgument(
          "degrade percent " + std::to_string(e.percent) + " outside [1, 99]");
    }
    if (e.kind == FaultKind::kLatentError &&
        (e.sub_lo < 0 || e.sub_hi < e.sub_lo)) {
      return Status::InvalidArgument(
          "latent error range [" + std::to_string(e.sub_lo) + ", " +
          std::to_string(e.sub_hi) + "] is invalid");
    }
    per_disk[e.disk].push_back(e);
  }

  for (auto& [disk, seq] : per_disk) {
    // ExpandedSorted already ordered the whole list; each per-disk
    // subsequence inherits the (time, apply rank) replay order.
    const std::string who = "disk " + std::to_string(disk);
    DiskHealth state = DiskHealth::kHealthy;
    SimTime transient_until = SimTime::Zero();
    SimTime last_at = SimTime(-1);
    FaultKind last_kind = FaultKind::kFail;
    bool have_last = false;
    for (const FaultEvent& e : seq) {
      // Exact duplicates are meaningless and rejected outright; distinct
      // kinds at one instant replay in apply-rank order, so a same-time
      // `recover` + `fail` pair is a legal back-to-back outage.
      if (have_last && e.at == last_at && e.kind == last_kind) {
        return Status::InvalidArgument(
            who + " has a duplicate " + FaultKindName(e.kind) +
            " event at " + e.at.ToString());
      }
      last_at = e.at;
      last_kind = e.kind;
      have_last = true;
      if ((state == DiskHealth::kStalled || state == DiskHealth::kDegraded) &&
          e.at >= transient_until) {
        state = DiskHealth::kHealthy;  // implicit stall/degrade recovery
      }
      switch (e.kind) {
        case FaultKind::kFail:
          if (state != DiskHealth::kHealthy) {
            return Status::InvalidArgument(
                who + " fails at " + e.at.ToString() +
                " while already failed, stalled, or degraded");
          }
          state = DiskHealth::kFailed;
          break;
        case FaultKind::kStall:
          if (state != DiskHealth::kHealthy) {
            return Status::InvalidArgument(
                who + " stalls at " + e.at.ToString() +
                " while already failed, stalled, or degraded");
          }
          state = DiskHealth::kStalled;
          transient_until = e.at + e.duration;
          break;
        case FaultKind::kDegrade:
          if (state != DiskHealth::kHealthy) {
            return Status::InvalidArgument(
                who + " degrades at " + e.at.ToString() +
                " while already failed, stalled, or degraded");
          }
          state = DiskHealth::kDegraded;
          transient_until = e.at + e.duration;
          break;
        case FaultKind::kLatentError:
          // Orthogonal to health: corrupt media is legal in any state
          // and drives no transition.
          break;
        case FaultKind::kRecover:
          if (state != DiskHealth::kFailed) {
            return Status::InvalidArgument(
                who + " recovers at " + e.at.ToString() +
                " but has no open failure (stalls and degrades recover "
                "implicitly)");
          }
          state = DiskHealth::kHealthy;
          break;
      }
    }
  }
  return Status::OK();
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  for (size_t d = 0; d < domains_.size(); ++d) {
    os << "domain " << d;
    for (const DiskId disk : domains_[d]) os << " " << disk;
    os << "\n";
  }
  for (const FaultEvent& e : Sorted()) {
    os << e.at.micros() << " " << FaultKindName(e.kind) << " ";
    if (e.domain >= 0) {
      os << "@" << e.domain;
    } else {
      os << e.disk;
    }
    switch (e.kind) {
      case FaultKind::kStall:
        os << " " << e.duration.micros();
        break;
      case FaultKind::kDegrade:
        os << " " << e.duration.micros() << " " << e.percent;
        break;
      case FaultKind::kLatentError:
        os << " " << e.sub_lo << " " << e.sub_hi;
        break;
      case FaultKind::kFail:
      case FaultKind::kRecover:
        break;
    }
    os << "\n";
  }
  return os.str();
}

namespace {

/// Whole-token base-10 integer parse; rejects partial parses ("12x"),
/// empty tokens, and out-of-range values.
bool ParseInt(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *out = value;
  return true;
}

/// Parses an event target: a bare disk id, or `@<domain>`.
bool ParseTarget(const std::string& token, DiskId* disk, int32_t* domain) {
  int64_t value = 0;
  if (!token.empty() && token[0] == '@') {
    if (!ParseInt(token.substr(1), &value) || value < 0) return false;
    *domain = static_cast<int32_t>(value);
    return true;
  }
  if (!ParseInt(token, &value)) return false;
  *disk = static_cast<DiskId>(value);
  *domain = -1;
  return true;
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string where = "fault plan line " + std::to_string(line_no);
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank or comment-only line
    }
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "domain") {
      // domain <id> <disk> <disk> ...  Ids must appear in declaration
      // order so `@<id>` references are unambiguous.
      std::string token;
      int64_t id = -1;
      if (!(ls >> token) || !ParseInt(token, &id) ||
          id != static_cast<int64_t>(plan.domains_.size())) {
        return Status::InvalidArgument(
            where + ": domain declarations must be numbered 0, 1, ... in order");
      }
      std::vector<DiskId> members;
      while (ls >> token) {
        int64_t disk = 0;
        if (!ParseInt(token, &disk)) {
          return Status::InvalidArgument(where + ": bad domain member '" +
                                         token + "'");
        }
        members.push_back(static_cast<DiskId>(disk));
      }
      if (members.empty()) {
        return Status::InvalidArgument(where + ": domain has no members");
      }
      plan.AddDomain(std::move(members));
      continue;
    }
    int64_t micros = 0;
    std::string kind;
    std::string target;
    if (!ParseInt(first, &micros) || !(ls >> kind >> target)) {
      return Status::InvalidArgument(where + " is malformed");
    }
    DiskId disk = 0;
    int32_t domain = -1;
    if (!ParseTarget(target, &disk, &domain)) {
      return Status::InvalidArgument(where + ": bad target '" + target + "'");
    }
    const SimTime at = SimTime::Micros(micros);
    if (kind == "fail") {
      if (domain >= 0) {
        plan.FailDomainAt(domain, at);
      } else {
        plan.FailAt(disk, at);
      }
    } else if (kind == "recover") {
      if (domain >= 0) {
        plan.RecoverDomainAt(domain, at);
      } else {
        plan.RecoverAt(disk, at);
      }
    } else if (kind == "stall") {
      std::string token;
      int64_t duration = 0;
      if (!(ls >> token) || !ParseInt(token, &duration)) {
        return Status::InvalidArgument("stall on line " +
                                       std::to_string(line_no) +
                                       " is missing its duration");
      }
      if (domain >= 0) {
        plan.StallDomainAt(domain, at, SimTime::Micros(duration));
      } else {
        plan.StallAt(disk, at, SimTime::Micros(duration));
      }
    } else if (kind == "degrade") {
      std::string dur_token;
      std::string pct_token;
      int64_t duration = 0;
      int64_t percent = 0;
      if (!(ls >> dur_token >> pct_token) || !ParseInt(dur_token, &duration) ||
          !ParseInt(pct_token, &percent)) {
        return Status::InvalidArgument(
            "degrade on line " + std::to_string(line_no) +
            " needs <duration_micros> <percent>");
      }
      if (domain >= 0) {
        plan.DegradeDomainAt(domain, at, SimTime::Micros(duration),
                             static_cast<int32_t>(percent));
      } else {
        plan.DegradeAt(disk, at, SimTime::Micros(duration),
                       static_cast<int32_t>(percent));
      }
    } else if (kind == "latent") {
      std::string lo_token;
      std::string hi_token;
      int64_t sub_lo = 0;
      int64_t sub_hi = 0;
      if (!(ls >> lo_token >> hi_token) || !ParseInt(lo_token, &sub_lo) ||
          !ParseInt(hi_token, &sub_hi)) {
        return Status::InvalidArgument("latent on line " +
                                       std::to_string(line_no) +
                                       " needs <sub_lo> <sub_hi>");
      }
      if (domain >= 0) {
        return Status::InvalidArgument(
            where + ": latent errors cannot target a domain");
      }
      plan.LatentAt(disk, at, sub_lo, sub_hi);
    } else {
      return Status::InvalidArgument("unknown fault kind '" + kind +
                                     "' on line " + std::to_string(line_no));
    }
    std::string extra;
    if (ls >> extra) {
      return Status::InvalidArgument("trailing garbage '" + extra +
                                     "' on line " + std::to_string(line_no));
    }
  }
  return plan;
}

namespace {

/// True when [start, end] touches no committed window.  Closed-interval
/// comparison: a recover and the next fault *may* legally share an
/// instant (the recover applies first), but Random keeps windows fully
/// disjoint so every generated plan is unambiguous to read.
bool WindowIsFree(const std::vector<std::pair<SimTime, SimTime>>& windows,
                  SimTime start, SimTime end) {
  for (const auto& [s, e] : windows) {
    if (start <= e && s <= end) return false;
  }
  return true;
}

}  // namespace

FaultPlan FaultPlan::Random(Rng* rng, int32_t num_disks, SimTime horizon,
                            int32_t num_failures, int32_t num_stalls,
                            SimTime mean_outage, SimTime mean_stall) {
  STAGGER_CHECK(num_disks >= 1);
  STAGGER_CHECK(horizon > SimTime::Zero());
  STAGGER_CHECK(num_failures >= 0 && num_stalls >= 0);
  FaultPlan plan;
  // Per-disk unavailability windows already committed, to keep the plan
  // consistent (Validate-clean) by construction.
  std::map<DiskId, std::vector<std::pair<SimTime, SimTime>>> windows;

  auto draw = [&](SimTime mean_duration, bool is_failure) {
    // Bounded re-draws keep generation deterministic and total even on
    // small, crowded arrays; a draw that cannot be placed is dropped.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto disk =
          static_cast<DiskId>(rng->NextBounded(static_cast<uint64_t>(num_disks)));
      const SimTime start = SimTime::Micros(
          rng->NextInRange(0, horizon.micros() - 1));
      const SimTime duration = SimTime::Micros(std::max<int64_t>(
          1, static_cast<int64_t>(
                 rng->NextExponential(static_cast<double>(mean_duration.micros())))));
      const SimTime end = start + duration;
      if (!WindowIsFree(windows[disk], start, end)) continue;
      windows[disk].emplace_back(start, end);
      if (is_failure) {
        plan.FailAt(disk, start);
        plan.RecoverAt(disk, end);
      } else {
        plan.StallAt(disk, start, duration);
      }
      return;
    }
  };

  for (int32_t i = 0; i < num_failures; ++i) draw(mean_outage, true);
  for (int32_t i = 0; i < num_stalls; ++i) draw(mean_stall, false);
  return plan;
}

FaultPlan FaultPlan::Generate(Rng* rng, int32_t num_disks,
                              const ChaosParams& params) {
  STAGGER_CHECK(num_disks >= 1);
  STAGGER_CHECK(params.horizon > SimTime::Zero());
  STAGGER_CHECK(params.num_domains >= 0 && params.num_domains <= num_disks);
  FaultPlan plan;

  // Contiguous enclosures: domain d owns disks [d*D/n, (d+1)*D/n).
  if (params.num_domains > 0) {
    for (int32_t d = 0; d < params.num_domains; ++d) {
      const int32_t lo = static_cast<int32_t>(
          static_cast<int64_t>(d) * num_disks / params.num_domains);
      const int32_t hi = static_cast<int32_t>(
          static_cast<int64_t>(d + 1) * num_disks / params.num_domains);
      std::vector<DiskId> members;
      for (int32_t disk = lo; disk < hi; ++disk) members.push_back(disk);
      plan.AddDomain(std::move(members));
    }
  }

  // Per-disk unavailability windows already committed; group events
  // must clear (and then occupy) the window of every member.
  std::map<DiskId, std::vector<std::pair<SimTime, SimTime>>> windows;

  // Expected event count at a per-disk MTBF over the horizon, with the
  // fractional part resolved by one Bernoulli draw so thin rates still
  // fire sometimes.
  auto count_for = [&](SimTime mtbf) -> int64_t {
    if (mtbf <= SimTime::Zero()) return 0;
    const double expected = static_cast<double>(num_disks) *
                            static_cast<double>(params.horizon.micros()) /
                            static_cast<double>(mtbf.micros());
    auto n = static_cast<int64_t>(expected);
    if (rng->NextDouble() < expected - static_cast<double>(n)) ++n;
    return n;
  };

  // One whole-disk or whole-domain unavailability window.  Group
  // targets fire with probability domain_event_fraction; a draw whose
  // window collides on any member is re-drawn, bounded, then dropped.
  auto draw_window = [&](SimTime mean_duration, FaultKind kind,
                         int32_t percent) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const bool group = params.num_domains > 0 &&
                         rng->NextDouble() < params.domain_event_fraction;
      std::vector<DiskId> targets;
      int32_t domain = -1;
      if (group) {
        domain = static_cast<int32_t>(
            rng->NextBounded(static_cast<uint64_t>(params.num_domains)));
        targets = plan.domains()[static_cast<size_t>(domain)];
      } else {
        targets.push_back(static_cast<DiskId>(
            rng->NextBounded(static_cast<uint64_t>(num_disks))));
      }
      const SimTime start =
          SimTime::Micros(rng->NextInRange(0, params.horizon.micros() - 1));
      const SimTime duration = SimTime::Micros(std::max<int64_t>(
          1, static_cast<int64_t>(rng->NextExponential(
                 static_cast<double>(mean_duration.micros())))));
      const SimTime end = start + duration;
      bool free = true;
      for (const DiskId disk : targets) {
        if (!WindowIsFree(windows[disk], start, end)) {
          free = false;
          break;
        }
      }
      if (!free) continue;
      for (const DiskId disk : targets) windows[disk].emplace_back(start, end);
      switch (kind) {
        case FaultKind::kFail:
          if (domain >= 0) {
            plan.FailDomainAt(domain, start);
            plan.RecoverDomainAt(domain, end);
          } else {
            plan.FailAt(targets[0], start);
            plan.RecoverAt(targets[0], end);
          }
          break;
        case FaultKind::kStall:
          if (domain >= 0) {
            plan.StallDomainAt(domain, start, duration);
          } else {
            plan.StallAt(targets[0], start, duration);
          }
          break;
        case FaultKind::kDegrade:
          if (domain >= 0) {
            plan.DegradeDomainAt(domain, start, duration, percent);
          } else {
            plan.DegradeAt(targets[0], start, duration, percent);
          }
          break;
        case FaultKind::kLatentError:
        case FaultKind::kRecover:
          STAGGER_CHECK(false) << "not a window kind";
      }
      return;
    }
  };

  // Deterministic generation order: failures, stalls, degrades, latents.
  const int64_t failures = count_for(params.mtbf);
  for (int64_t i = 0; i < failures; ++i) {
    draw_window(params.mttr, FaultKind::kFail, 0);
  }
  const int64_t stalls = count_for(params.stall_mtbf);
  for (int64_t i = 0; i < stalls; ++i) {
    draw_window(params.mean_stall, FaultKind::kStall, 0);
  }
  const int64_t degrades = count_for(params.degrade_mtbf);
  for (int64_t i = 0; i < degrades; ++i) {
    const auto percent = static_cast<int32_t>(rng->NextInRange(
        params.min_degrade_percent, params.max_degrade_percent));
    draw_window(params.mean_degrade, FaultKind::kDegrade, percent);
  }

  // Latent errors are health-orthogonal, so they need no window; only
  // exact (disk, instant) duplicates must be avoided.
  const int64_t latents =
      params.subobject_space > 0 ? count_for(params.latent_mtbf) : 0;
  std::set<std::pair<DiskId, int64_t>> latent_at;
  for (int64_t i = 0; i < latents; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto disk = static_cast<DiskId>(
          rng->NextBounded(static_cast<uint64_t>(num_disks)));
      const int64_t at = rng->NextInRange(0, params.horizon.micros() - 1);
      if (!latent_at.insert({disk, at}).second) continue;
      const int64_t run = rng->NextInRange(
          1, std::min(params.max_latent_run, params.subobject_space));
      const int64_t lo = rng->NextInRange(0, params.subobject_space - run);
      plan.LatentAt(disk, SimTime::Micros(at), lo, lo + run - 1);
      break;
    }
  }
  return plan;
}

}  // namespace stagger
