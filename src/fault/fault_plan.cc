#include "fault/fault_plan.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "util/check.h"

namespace stagger {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFail: return "fail";
    case FaultKind::kStall: return "stall";
    case FaultKind::kRecover: return "recover";
  }
  return "unknown";
}

FaultPlan& FaultPlan::FailAt(DiskId disk, SimTime at) {
  events_.push_back(FaultEvent{at, FaultKind::kFail, disk, SimTime::Zero()});
  return *this;
}

FaultPlan& FaultPlan::StallAt(DiskId disk, SimTime at, SimTime duration) {
  events_.push_back(FaultEvent{at, FaultKind::kStall, disk, duration});
  return *this;
}

FaultPlan& FaultPlan::RecoverAt(DiskId disk, SimTime at) {
  events_.push_back(FaultEvent{at, FaultKind::kRecover, disk, SimTime::Zero()});
  return *this;
}

namespace {

/// Apply rank for events sharing a disk and an instant: a recover ends
/// the old outage before a new fail or stall opens the next one, so a
/// back-to-back `recover` + `fail` pair at the same timestamp replays
/// deterministically.
int ApplyRank(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRecover: return 0;
    case FaultKind::kFail: return 1;
    case FaultKind::kStall: return 2;
  }
  return 3;
}

}  // namespace

std::vector<FaultEvent> FaultPlan::Sorted() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.disk != b.disk) return a.disk < b.disk;
                     return ApplyRank(a.kind) < ApplyRank(b.kind);
                   });
  return sorted;
}

Status FaultPlan::Validate(int32_t num_disks) const {
  // Per-disk sweep over the time-sorted events, replaying the health
  // machine each event would drive.  `stalled_until` tracks the open
  // stall's implicit recovery.
  std::map<DiskId, std::vector<FaultEvent>> per_disk;
  for (const FaultEvent& e : events_) {
    if (e.disk < 0 || e.disk >= num_disks) {
      return Status::InvalidArgument(
          "fault event targets nonexistent disk " + std::to_string(e.disk));
    }
    if (e.at < SimTime::Zero()) {
      return Status::InvalidArgument("fault event time must be >= 0");
    }
    if (e.kind == FaultKind::kStall && e.duration <= SimTime::Zero()) {
      return Status::InvalidArgument("stall duration must be positive");
    }
    per_disk[e.disk].push_back(e);
  }

  for (auto& [disk, seq] : per_disk) {
    // Same replay order the injector uses (Sorted): time, then the
    // recover-before-fail apply rank for same-instant ties.
    std::stable_sort(seq.begin(), seq.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       if (a.at != b.at) return a.at < b.at;
                       return ApplyRank(a.kind) < ApplyRank(b.kind);
                     });
    const std::string who = "disk " + std::to_string(disk);
    DiskHealth state = DiskHealth::kHealthy;
    SimTime stalled_until = SimTime::Zero();
    SimTime last_at = SimTime(-1);
    FaultKind last_kind = FaultKind::kFail;
    bool have_last = false;
    for (const FaultEvent& e : seq) {
      // Exact duplicates are meaningless and rejected outright; distinct
      // kinds at one instant replay in apply-rank order, so a same-time
      // `recover` + `fail` pair is a legal back-to-back outage.
      if (have_last && e.at == last_at && e.kind == last_kind) {
        return Status::InvalidArgument(
            who + " has a duplicate " + FaultKindName(e.kind) +
            " event at " + e.at.ToString());
      }
      last_at = e.at;
      last_kind = e.kind;
      have_last = true;
      if (state == DiskHealth::kStalled && e.at >= stalled_until) {
        state = DiskHealth::kHealthy;  // implicit stall recovery
      }
      switch (e.kind) {
        case FaultKind::kFail:
          if (state != DiskHealth::kHealthy) {
            return Status::InvalidArgument(
                who + " fails at " + e.at.ToString() +
                " while already failed or stalled");
          }
          state = DiskHealth::kFailed;
          break;
        case FaultKind::kStall:
          if (state != DiskHealth::kHealthy) {
            return Status::InvalidArgument(
                who + " stalls at " + e.at.ToString() +
                " while already failed or stalled");
          }
          state = DiskHealth::kStalled;
          stalled_until = e.at + e.duration;
          break;
        case FaultKind::kRecover:
          if (state != DiskHealth::kFailed) {
            return Status::InvalidArgument(
                who + " recovers at " + e.at.ToString() +
                " but has no open failure (stalls recover implicitly)");
          }
          state = DiskHealth::kHealthy;
          break;
      }
    }
  }
  return Status::OK();
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  for (const FaultEvent& e : Sorted()) {
    os << e.at.micros() << " " << FaultKindName(e.kind) << " " << e.disk;
    if (e.kind == FaultKind::kStall) os << " " << e.duration.micros();
    os << "\n";
  }
  return os.str();
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank or comment-only line
    }
    std::istringstream ls(line);
    int64_t micros = 0;
    std::string kind;
    DiskId disk = 0;
    if (!(ls >> micros >> kind >> disk)) {
      return Status::InvalidArgument("fault plan line " +
                                     std::to_string(line_no) + " is malformed");
    }
    if (kind == "fail") {
      plan.FailAt(disk, SimTime::Micros(micros));
    } else if (kind == "recover") {
      plan.RecoverAt(disk, SimTime::Micros(micros));
    } else if (kind == "stall") {
      int64_t duration = 0;
      if (!(ls >> duration)) {
        return Status::InvalidArgument("stall on line " +
                                       std::to_string(line_no) +
                                       " is missing its duration");
      }
      plan.StallAt(disk, SimTime::Micros(micros), SimTime::Micros(duration));
    } else {
      return Status::InvalidArgument("unknown fault kind '" + kind +
                                     "' on line " + std::to_string(line_no));
    }
    std::string extra;
    if (ls >> extra) {
      return Status::InvalidArgument("trailing garbage '" + extra +
                                     "' on line " + std::to_string(line_no));
    }
  }
  return plan;
}

namespace {

/// True when [start, end] touches no committed window.  Closed-interval
/// comparison: a recover and the next fault *may* legally share an
/// instant (the recover applies first), but Random keeps windows fully
/// disjoint so every generated plan is unambiguous to read.
bool WindowIsFree(const std::vector<std::pair<SimTime, SimTime>>& windows,
                  SimTime start, SimTime end) {
  for (const auto& [s, e] : windows) {
    if (start <= e && s <= end) return false;
  }
  return true;
}

}  // namespace

FaultPlan FaultPlan::Random(Rng* rng, int32_t num_disks, SimTime horizon,
                            int32_t num_failures, int32_t num_stalls,
                            SimTime mean_outage, SimTime mean_stall) {
  STAGGER_CHECK(num_disks >= 1);
  STAGGER_CHECK(horizon > SimTime::Zero());
  STAGGER_CHECK(num_failures >= 0 && num_stalls >= 0);
  FaultPlan plan;
  // Per-disk unavailability windows already committed, to keep the plan
  // consistent (Validate-clean) by construction.
  std::map<DiskId, std::vector<std::pair<SimTime, SimTime>>> windows;

  auto draw = [&](SimTime mean_duration, bool is_failure) {
    // Bounded re-draws keep generation deterministic and total even on
    // small, crowded arrays; a draw that cannot be placed is dropped.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto disk =
          static_cast<DiskId>(rng->NextBounded(static_cast<uint64_t>(num_disks)));
      const SimTime start = SimTime::Micros(
          rng->NextInRange(0, horizon.micros() - 1));
      const SimTime duration = SimTime::Micros(std::max<int64_t>(
          1, static_cast<int64_t>(
                 rng->NextExponential(static_cast<double>(mean_duration.micros())))));
      const SimTime end = start + duration;
      if (!WindowIsFree(windows[disk], start, end)) continue;
      windows[disk].emplace_back(start, end);
      if (is_failure) {
        plan.FailAt(disk, start);
        plan.RecoverAt(disk, end);
      } else {
        plan.StallAt(disk, start, duration);
      }
      return;
    }
  };

  for (int32_t i = 0; i < num_failures; ++i) draw(mean_outage, true);
  for (int32_t i = 0; i < num_stalls; ++i) draw(mean_stall, false);
  return plan;
}

}  // namespace stagger
