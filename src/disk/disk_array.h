// The farm of D disks.  Provides modular-adjacent idle-run queries used
// by staggered-striping admission, aggregate capacity accounting, and
// utilization reporting.
//
// Hot spares (fault-tolerance layer, src/rebuild/): the array may be
// created with S spare drives beyond the D addressable slots.  Layouts
// and schedulers address *slots*; a slot resolves to a physical drive
// through an indirection table.  Promoting a spare rewires a failed
// slot onto a healthy drive without renaming any fragment, so a
// rebuilt array is bit-identical to the pre-failure placement in slot
// space — the invariant the rebuild subsystem audits.

#ifndef STAGGER_DISK_DISK_ARRAY_H_
#define STAGGER_DISK_DISK_ARRAY_H_

#include <optional>
#include <vector>

#include "disk/disk.h"
#include "disk/disk_parameters.h"
#include "util/result.h"

namespace stagger {

/// \brief A homogeneous array of `D` simulated disks plus an optional
/// pool of hot-spare drives.
class DiskArray {
 public:
  /// \param num_disks  D; must be >= 1.
  /// \param params     drive model shared by all disks (and spares).
  /// \param num_spares hot spares beyond the D slots; >= 0.
  static Result<DiskArray> Create(int32_t num_disks, const DiskParameters& params,
                                  int32_t num_spares = 0);

  int32_t num_disks() const { return num_slots_; }
  const DiskParameters& params() const { return params_; }

  Disk& disk(DiskId id) { return drives_[DriveOf(Wrap(id))]; }
  const Disk& disk(DiskId id) const { return drives_[DriveOf(Wrap(id))]; }

  /// Maps any integer onto a valid disk id (modulo D).
  DiskId Wrap(int64_t id) const {
    return static_cast<DiskId>(PositiveMod(id, num_disks()));
  }

  /// True when all of disks start, start+1, ..., start+len-1 (mod D) are
  /// idle this interval.
  bool RunIsIdle(DiskId start, int32_t len) const;

  /// Reserves the adjacent run [start, start+len) (mod D).
  /// Precondition: RunIsIdle(start, len).
  void ReserveRun(DiskId start, int32_t len);

  /// Number of idle disks this interval.
  int32_t IdleCount() const;

  // --- health (fault injection, src/fault/) -----------------------------
  bool IsAvailable(DiskId id) const { return disk(id).available(); }
  void FailDisk(DiskId id) { disk(id).Fail(); }
  void StallDisk(DiskId id) { disk(id).Stall(); }
  void RecoverDisk(DiskId id) { disk(id).Recover(); }
  /// Disks currently able to serve reads.
  int32_t AvailableCount() const;
  /// Disks currently failed or stalled.
  int32_t UnavailableCount() const { return num_disks() - AvailableCount(); }

  // --- hot spares (online rebuild, src/rebuild/) ------------------------
  /// Spare drives configured at creation.
  int32_t num_spares() const { return num_spares_; }
  /// Spare drives not currently claimed by a rebuild.
  int32_t FreeSpareCount() const {
    return static_cast<int32_t>(free_spares_.size());
  }
  /// Claims a spare drive for a rebuild; returns its drive index (only
  /// meaningful to spare_drive / ReturnSpare / PromoteSpare).  Fails
  /// with ResourceExhausted when the pool is empty.
  Result<int32_t> AcquireSpare();
  /// Returns an unused spare to the pool (rebuild cancelled because the
  /// original drive recovered naturally).
  void ReturnSpare(int32_t drive);
  /// Direct access to a claimed spare drive, for rebuild writes.
  Disk& spare_drive(int32_t drive);
  /// Rewires `slot` onto the claimed spare `drive` and marks the slot
  /// healthy.  The failed drive's storage accounting transfers to the
  /// spare so later frees balance; the dead drive is retired.
  /// Preconditions: the slot's current drive is failed; `drive` was
  /// returned by AcquireSpare and not yet promoted or returned.
  void PromoteSpare(DiskId slot, int32_t drive);

  /// Ends the current interval on every drive — slots and spares — so
  /// rebuild writes clear their busy flags like any other transfer.
  void EndInterval();

  // --- aggregate storage ------------------------------------------------
  int64_t TotalCylinders() const;
  int64_t FreeCylinders() const;
  DataSize TotalCapacity() const {
    return params_.cylinder_capacity * TotalCylinders();
  }

  /// Mean per-disk utilization over all elapsed intervals.
  double MeanUtilization() const;
  /// Max/min per-disk utilization — data-skew indicators (Section 3.2.2).
  double MaxUtilization() const;
  double MinUtilization() const;

  /// Largest and smallest per-disk used storage, for skew analysis.
  int64_t MaxUsedCylinders() const;
  int64_t MinUsedCylinders() const;

 private:
  DiskArray(std::vector<Disk> drives, DiskParameters params, int32_t num_slots,
            int32_t num_spares);

  size_t DriveOf(DiskId slot) const {
    return static_cast<size_t>(slot_to_drive_[static_cast<size_t>(slot)]);
  }

  /// All physical drives: indices [0, D) start as the slots' drives,
  /// [D, D + S) as spares.  Promotion rewires slot_to_drive_.
  std::vector<Disk> drives_;
  DiskParameters params_;
  int32_t num_slots_;
  int32_t num_spares_;
  std::vector<int32_t> slot_to_drive_;
  /// Spare drive indices not yet claimed.
  std::vector<int32_t> free_spares_;
  /// Spare drive indices claimed by AcquireSpare, pending promotion.
  std::vector<int32_t> claimed_spares_;
};

}  // namespace stagger

#endif  // STAGGER_DISK_DISK_ARRAY_H_
