// The farm of D disks.  Provides modular-adjacent idle-run queries used
// by staggered-striping admission, aggregate capacity accounting, and
// utilization reporting.
//
// Hot spares (fault-tolerance layer, src/rebuild/): the array may be
// created with S spare drives beyond the D addressable slots.  Layouts
// and schedulers address *slots*; a slot resolves to a physical drive
// through an indirection table.  Promoting a spare rewires a failed
// slot onto a healthy drive without renaming any fragment, so a
// rebuilt array is bit-identical to the pre-failure placement in slot
// space — the invariant the rebuild subsystem audits.
//
// Per-interval cost: busy state is a drive-indexed bitmap plus a dense
// vector of busy-interval counters, both owned by the array.  Reserving
// a slot is one L1-resident bitmap store with no division
// (ReserveSlot); closing an interval folds the bitmap into the
// counters in ascending drive order and clears it word-by-word.  Slot
// availability is mirrored in a bitmap so AvailableCount()/
// UnavailableCount() are O(1) — the scheduler's healthy-path test per
// tick.

#ifndef STAGGER_DISK_DISK_ARRAY_H_
#define STAGGER_DISK_DISK_ARRAY_H_

#include <memory>
#include <optional>
#include <vector>

#include "disk/disk.h"
#include "disk/disk_parameters.h"
#include "disk/latent_errors.h"
#include "util/bitmap.h"
#include "util/hot_path.h"
#include "util/result.h"

namespace stagger {

/// \brief A homogeneous array of `D` simulated disks plus an optional
/// pool of hot-spare drives.
class DiskArray {
 public:
  /// \param num_disks  D; must be >= 1.
  /// \param params     drive model shared by all disks (and spares).
  /// \param num_spares hot spares beyond the D slots; >= 0.
  static Result<DiskArray> Create(int32_t num_disks, const DiskParameters& params,
                                  int32_t num_spares = 0);

  int32_t num_disks() const { return num_slots_; }
  const DiskParameters& params() const { return params_; }

  Disk& disk(DiskId id) { return drives_[DriveOf(Wrap(id))]; }
  const Disk& disk(DiskId id) const { return drives_[DriveOf(Wrap(id))]; }

  /// Maps any integer onto a valid disk id (modulo D).
  DiskId Wrap(int64_t id) const {
    return static_cast<DiskId>(PositiveMod(id, num_disks()));
  }

  // --- per-interval bandwidth (scheduler hot path) ----------------------
  //
  // Slot-addressed: `slot` must already be in [0, D) — the scheduler
  // computes physical disks with a conditional subtract, so no modulo
  // runs here.  Drive-addressed variants serve the spare pool (rebuild
  // writes), whose drive indices come from AcquireSpare.

  /// True when `slot`'s drive is transferring this interval.
  STAGGER_HOT_PATH bool SlotBusy(DiskId slot) const {
    STAGGER_DCHECK(slot >= 0 && slot < num_slots_);
    return busy_drives_.Test(slot_to_drive_[static_cast<size_t>(slot)]);
  }

  /// Marks `slot`'s drive busy for the current interval.
  /// Preconditions: currently idle, and IsAvailable(slot) — the
  /// scheduler must never place load on a failed or stalled disk.
  STAGGER_HOT_PATH void ReserveSlot(DiskId slot) {
    STAGGER_DCHECK(slot >= 0 && slot < num_slots_);
    ReserveDrive(slot_to_drive_[static_cast<size_t>(slot)]);
  }

  /// True when physical drive `drive` is transferring this interval.
  STAGGER_HOT_PATH bool DriveBusy(int32_t drive) const { return busy_drives_.Test(drive); }

  /// Marks physical drive `drive` busy for the current interval; same
  /// preconditions as ReserveSlot.  Busy-interval counters are folded
  /// in at EndInterval, so the hot path is a single bitmap store.
  STAGGER_HOT_PATH void ReserveDrive(int32_t drive) {
    STAGGER_DCHECK(!busy_drives_.Test(drive))
        << "drive " << drive << " reserved twice in one interval";
    STAGGER_DCHECK(drives_[static_cast<size_t>(drive)].available())
        << "drive " << drive << " reserved while failed or stalled";
    busy_drives_.Set(drive);
  }

  /// Intervals closed so far.
  int64_t intervals() const { return clock_->intervals; }

  /// True when all of disks start, start+1, ..., start+len-1 (mod D) are
  /// idle this interval.
  bool RunIsIdle(DiskId start, int32_t len) const;

  /// Reserves the adjacent run [start, start+len) (mod D).
  /// Precondition: RunIsIdle(start, len), every slot available.
  ///
  /// Until a spare promotion rewires a slot, slot i maps to drive i, so
  /// the run is a contiguous bit range in the busy bitmap and the whole
  /// reservation is a couple of masked word-ORs — the scheduler's
  /// lockstep fast path reserves a stream's M adjacent disks this way.
  STAGGER_HOT_PATH void ReserveRun(DiskId start, int32_t len) {
    STAGGER_DCHECK(start >= 0 && start < num_slots_);
    STAGGER_DCHECK(len >= 0 && len <= num_slots_);
    if (!dense_slots_) {
      ReserveRunRemapped(start, len);
      return;
    }
#ifndef NDEBUG
    for (int32_t i = 0; i < len; ++i) {
      const DiskId slot = Wrap(static_cast<int64_t>(start) + i);
      STAGGER_DCHECK(!busy_drives_.Test(slot))
          << "slot " << slot << " reserved twice in one interval";
      STAGGER_DCHECK(drives_[static_cast<size_t>(slot)].available())
          << "slot " << slot << " reserved while failed or stalled";
    }
#endif
    // The busy bitmap covers drives [0, D + S); slot runs wrap at D,
    // so split the wrap here instead of using Bitmap::SetWindow.
    const int32_t tail = num_slots_ - start;
    if (len <= tail) {
      busy_drives_.SetRange(start, start + len);
    } else {
      busy_drives_.SetRange(start, num_slots_);
      busy_drives_.SetRange(0, len - tail);
    }
  }

  /// Number of idle disks this interval.
  int32_t IdleCount() const;

  // --- health (fault injection, src/fault/) -----------------------------
  //
  // Health transitions must go through these slot-level methods (not
  // Disk::Fail etc. directly) so the availability bitmap stays in sync.
  bool IsAvailable(DiskId id) const { return disk(id).available(); }
  void FailDisk(DiskId id);
  void StallDisk(DiskId id);
  /// Degrades `id`'s drive to `percent`% of B_Disk (see Disk::Degrade):
  /// from the next interval on it serves reads only on its duty-cycle
  /// intervals, and the availability bitmap tracks the cycle.
  void DegradeDisk(DiskId id, int32_t percent);
  void RecoverDisk(DiskId id);
  /// Disks currently able to serve reads.  O(1).
  int32_t AvailableCount() const { return num_slots_ - unavailable_count_; }
  /// Disks currently failed, stalled, or on a degraded drive's
  /// non-serving interval.  O(1).
  int32_t UnavailableCount() const { return unavailable_count_; }
  /// Slot-space availability bitmap: bit set == slot unavailable.
  const Bitmap& unavailable_slots() const { return unavailable_slots_; }
  /// Slots currently available AND idle this interval — the measured
  /// idle bandwidth the background budget (src/background/) may grant.
  int32_t IdleAvailableCount() const;
  /// Total slot-intervals spent in the degraded state (serving or not),
  /// across all disks and the whole run.
  int64_t degraded_disk_intervals() const { return degraded_disk_intervals_; }

  /// Registry of latent sector errors on this array's media, shared by
  /// the fault injector (writes), the scrubber, the rebuild, and the
  /// scheduler's checksum path (reads).
  LatentErrorMap& latent_errors() { return *latent_errors_; }
  const LatentErrorMap& latent_errors() const { return *latent_errors_; }

  // --- hot spares (online rebuild, src/rebuild/) ------------------------
  /// Spare drives configured at creation.
  int32_t num_spares() const { return num_spares_; }
  /// Spare drives not currently claimed by a rebuild.
  int32_t FreeSpareCount() const {
    return static_cast<int32_t>(free_spares_.size());
  }
  /// Claims a spare drive for a rebuild; returns its drive index (only
  /// meaningful to spare_drive / ReturnSpare / PromoteSpare).  Fails
  /// with ResourceExhausted when the pool is empty.
  Result<int32_t> AcquireSpare();
  /// Returns an unused spare to the pool (rebuild cancelled because the
  /// original drive recovered naturally).
  void ReturnSpare(int32_t drive);
  /// Direct access to a claimed spare drive, for rebuild writes.
  Disk& spare_drive(int32_t drive);
  /// Rewires `slot` onto the claimed spare `drive` and marks the slot
  /// healthy.  The failed drive's storage accounting transfers to the
  /// spare so later frees balance; the dead drive is retired.
  /// Preconditions: the slot's current drive is failed; `drive` was
  /// returned by AcquireSpare and not yet promoted or returned.
  void PromoteSpare(DiskId slot, int32_t drive);

  /// Ends the current interval: clears the busy bitmap (slots and
  /// spares alike — rebuild writes reserve through the same bitmap) and
  /// advances the shared interval counter.  O((D + S)/64) word stores.
  STAGGER_HOT_PATH void EndInterval();

  // --- aggregate storage ------------------------------------------------
  int64_t TotalCylinders() const;
  int64_t FreeCylinders() const;
  DataSize TotalCapacity() const {
    return params_.cylinder_capacity * TotalCylinders();
  }

  /// Fraction of elapsed intervals `slot`'s current drive spent
  /// transferring (after a promotion the slot reports its new drive).
  /// Reservations are folded into the counters at interval close, so
  /// the current open interval is not yet counted.
  double SlotUtilization(DiskId slot) const {
    const int64_t total = clock_->intervals;
    return total == 0
               ? 0.0
               : static_cast<double>(drive_busy_intervals_[DriveOf(slot)]) /
                     static_cast<double>(total);
  }

  /// Mean per-disk utilization over all elapsed intervals.
  double MeanUtilization() const;
  /// Max/min per-disk utilization — data-skew indicators (Section 3.2.2).
  double MaxUtilization() const;
  double MinUtilization() const;

  /// Largest and smallest per-disk used storage, for skew analysis.
  int64_t MaxUsedCylinders() const;
  int64_t MinUsedCylinders() const;

 private:
  DiskArray(std::vector<Disk> drives, DiskParameters params, int32_t num_slots,
            int32_t num_spares);

  size_t DriveOf(DiskId slot) const {
    return static_cast<size_t>(slot_to_drive_[static_cast<size_t>(slot)]);
  }

  /// Records an availability flip of `slot` in the bitmap; `was` is the
  /// slot's availability before the health transition.
  void NoteAvailabilityChange(DiskId slot, bool was);

  /// Removes `slot` from the degraded-slot walk list.
  void DropDegradedSlot(DiskId slot);

  /// ReserveRun fallback once slot_to_drive_ is no longer the identity:
  /// adjacent slots may sit on arbitrary drives, so reserve one by one.
  void ReserveRunRemapped(DiskId start, int32_t len);

  /// All physical drives: indices [0, D) start as the slots' drives,
  /// [D, D + S) as spares.  Promotion rewires slot_to_drive_.
  std::vector<Disk> drives_;
  DiskParameters params_;
  int32_t num_slots_;
  int32_t num_spares_;
  std::vector<int32_t> slot_to_drive_;
  /// Spare drive indices not yet claimed.
  std::vector<int32_t> free_spares_;
  /// Spare drive indices claimed by AcquireSpare, pending promotion.
  std::vector<int32_t> claimed_spares_;
  /// Shared interval clock; heap-allocated so the drives' back-pointers
  /// (used for lazy down-time accounting) survive moves of the array.
  std::unique_ptr<IntervalClock> clock_;
  /// Bit set == physical drive is transferring this interval.  Indexed
  /// by drive (construction index), so the bits stay valid across slot
  /// rewiring by PromoteSpare.
  Bitmap busy_drives_;
  /// Per-drive count of intervals spent transferring; drive-indexed
  /// like busy_drives_.  Dense so the reservation hot path and the
  /// utilization reports never touch the Disk objects.
  std::vector<int64_t> drive_busy_intervals_;
  /// Bit set == slot's drive is failed, stalled, or degraded-and-not-
  /// serving this interval.
  Bitmap unavailable_slots_;
  int32_t unavailable_count_ = 0;
  /// Slots whose drives are currently degraded, sorted ascending; the
  /// interval close advances only these drives' duty cycles, so arrays
  /// with no stragglers pay nothing.
  std::vector<DiskId> degraded_slots_;
  int64_t degraded_disk_intervals_ = 0;
  /// Heap-allocated like clock_ so reader-held pointers survive moves.
  std::unique_ptr<LatentErrorMap> latent_errors_;
  /// True while slot_to_drive_ is the identity (no spare promoted yet):
  /// ReserveRun may then treat a slot run as a drive-bitmap bit range.
  bool dense_slots_ = true;
};

}  // namespace stagger

#endif  // STAGGER_DISK_DISK_ARRAY_H_
