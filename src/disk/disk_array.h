// The farm of D disks.  Provides modular-adjacent idle-run queries used
// by staggered-striping admission, aggregate capacity accounting, and
// utilization reporting.

#ifndef STAGGER_DISK_DISK_ARRAY_H_
#define STAGGER_DISK_DISK_ARRAY_H_

#include <optional>
#include <vector>

#include "disk/disk.h"
#include "disk/disk_parameters.h"
#include "util/result.h"

namespace stagger {

/// \brief A homogeneous array of `D` simulated disks.
class DiskArray {
 public:
  /// \param num_disks  D; must be >= 1.
  /// \param params     drive model shared by all disks.
  static Result<DiskArray> Create(int32_t num_disks, const DiskParameters& params);

  int32_t num_disks() const { return static_cast<int32_t>(disks_.size()); }
  const DiskParameters& params() const { return params_; }

  Disk& disk(DiskId id) { return disks_[static_cast<size_t>(Wrap(id))]; }
  const Disk& disk(DiskId id) const { return disks_[static_cast<size_t>(Wrap(id))]; }

  /// Maps any integer onto a valid disk id (modulo D).
  DiskId Wrap(int64_t id) const {
    return static_cast<DiskId>(PositiveMod(id, num_disks()));
  }

  /// True when all of disks start, start+1, ..., start+len-1 (mod D) are
  /// idle this interval.
  bool RunIsIdle(DiskId start, int32_t len) const;

  /// Reserves the adjacent run [start, start+len) (mod D).
  /// Precondition: RunIsIdle(start, len).
  void ReserveRun(DiskId start, int32_t len);

  /// Number of idle disks this interval.
  int32_t IdleCount() const;

  // --- health (fault injection, src/fault/) -----------------------------
  bool IsAvailable(DiskId id) const { return disk(id).available(); }
  void FailDisk(DiskId id) { disk(id).Fail(); }
  void StallDisk(DiskId id) { disk(id).Stall(); }
  void RecoverDisk(DiskId id) { disk(id).Recover(); }
  /// Disks currently able to serve reads.
  int32_t AvailableCount() const;
  /// Disks currently failed or stalled.
  int32_t UnavailableCount() const { return num_disks() - AvailableCount(); }

  /// Ends the current interval on every disk (clears busy flags and
  /// accumulates utilization counters).
  void EndInterval();

  // --- aggregate storage ------------------------------------------------
  int64_t TotalCylinders() const;
  int64_t FreeCylinders() const;
  DataSize TotalCapacity() const {
    return params_.cylinder_capacity * TotalCylinders();
  }

  /// Mean per-disk utilization over all elapsed intervals.
  double MeanUtilization() const;
  /// Max/min per-disk utilization — data-skew indicators (Section 3.2.2).
  double MaxUtilization() const;
  double MinUtilization() const;

  /// Largest and smallest per-disk used storage, for skew analysis.
  int64_t MaxUsedCylinders() const;
  int64_t MinUsedCylinders() const;

 private:
  DiskArray(std::vector<Disk> disks, DiskParameters params)
      : disks_(std::move(disks)), params_(params) {}
  std::vector<Disk> disks_;
  DiskParameters params_;
};

}  // namespace stagger

#endif  // STAGGER_DISK_DISK_ARRAY_H_
