#include "disk/latent_errors.h"

#include "util/check.h"

namespace stagger {

int64_t LatentErrorMap::Inject(DiskId disk, int64_t sub_lo, int64_t sub_hi) {
  STAGGER_CHECK(sub_lo >= 0 && sub_hi >= sub_lo)
      << "latent error range [" << sub_lo << ", " << sub_hi << "] is invalid";
  std::map<int64_t, Cell>& rows = cells_[disk];
  int64_t fresh = 0;
  for (int64_t sub = sub_lo; sub <= sub_hi; ++sub) {
    const auto [it, inserted] = rows.emplace(sub, Cell{now(), -1});
    (void)it;
    if (inserted) ++fresh;
  }
  active_cells_ += fresh;
  metrics_.injected += fresh;
  return fresh;
}

bool LatentErrorMap::IsCorrupt(DiskId disk, int64_t subobject) const {
  const auto dit = cells_.find(disk);
  if (dit == cells_.end()) return false;
  return dit->second.count(subobject) > 0;
}

bool LatentErrorMap::MarkDetected(DiskId disk, int64_t subobject) {
  auto dit = cells_.find(disk);
  STAGGER_CHECK(dit != cells_.end()) << "no corrupt cell on disk " << disk;
  auto cit = dit->second.find(subobject);
  STAGGER_CHECK(cit != dit->second.end())
      << "cell (" << disk << ", " << subobject << ") is not corrupt";
  if (cit->second.detected_interval >= 0) return false;
  cit->second.detected_interval = now();
  ++metrics_.detected;
  return true;
}

void LatentErrorMap::Repair(DiskId disk, int64_t subobject) {
  auto dit = cells_.find(disk);
  STAGGER_CHECK(dit != cells_.end()) << "no corrupt cell on disk " << disk;
  auto cit = dit->second.find(subobject);
  STAGGER_CHECK(cit != dit->second.end())
      << "cell (" << disk << ", " << subobject << ") is not corrupt";
  metrics_.time_to_repair_intervals.Add(
      static_cast<double>(now() - cit->second.injected_interval));
  dit->second.erase(cit);
  if (dit->second.empty()) cells_.erase(dit);
  --active_cells_;
  ++metrics_.repaired;
}

int64_t LatentErrorMap::DropDiskRebuilt(DiskId disk) {
  auto dit = cells_.find(disk);
  if (dit == cells_.end()) return 0;
  const int64_t dropped = static_cast<int64_t>(dit->second.size());
  for (const auto& [sub, cell] : dit->second) {
    (void)sub;
    metrics_.time_to_repair_intervals.Add(
        static_cast<double>(now() - cell.injected_interval));
  }
  cells_.erase(dit);
  active_cells_ -= dropped;
  metrics_.repaired_by_rebuild += dropped;
  return dropped;
}

}  // namespace stagger
