// A single simulated disk drive: storage accounting in cylinders plus
// per-interval busy/idle bookkeeping used by the interval scheduler.

#ifndef STAGGER_DISK_DISK_H_
#define STAGGER_DISK_DISK_H_

#include <cstdint>

#include "disk/disk_parameters.h"
#include "util/status.h"
#include "util/units.h"

namespace stagger {

/// Index of a physical disk in the array, 0-based.
using DiskId = int32_t;

/// \brief Health of one drive (fault-injection subsystem, src/fault/).
///
/// A failed disk has lost its media: reads are rejected until an
/// operator-level Recover() (replacement + rebuild).  A stalled disk
/// keeps its data but blows its T_switch budget — any read issued
/// during the stall misses its interval deadline, so the scheduler must
/// treat it exactly like a failure for the stall's duration.
enum class DiskHealth {
  kHealthy,
  kFailed,
  kStalled,
};

/// \brief One simulated drive.
///
/// Storage is allocated in whole cylinders (the fragment granularity of
/// the paper).  Bandwidth occupancy is tracked per time interval by the
/// scheduler through Reserve/Release; the disk accumulates busy-interval
/// counts for utilization reporting.
class Disk {
 public:
  Disk(DiskId id, const DiskParameters& params)
      : id_(id), free_cylinders_(params.num_cylinders),
        total_cylinders_(params.num_cylinders) {}

  DiskId id() const { return id_; }

  // --- storage ---------------------------------------------------------
  int64_t total_cylinders() const { return total_cylinders_; }
  int64_t free_cylinders() const { return free_cylinders_; }
  int64_t used_cylinders() const { return total_cylinders_ - free_cylinders_; }

  /// Reserves `cylinders` of storage; fails with ResourceExhausted when
  /// the drive is full.
  Status AllocateStorage(int64_t cylinders);
  /// Returns previously allocated storage.
  void FreeStorage(int64_t cylinders);

  // --- health (fault injection) ----------------------------------------
  DiskHealth health() const { return health_; }
  /// True when the drive can serve reads this interval.
  bool available() const { return health_ == DiskHealth::kHealthy; }
  /// Media loss: the drive rejects reads until Recover().  Idempotent;
  /// failing a stalled disk escalates the stall to a failure.
  void Fail();
  /// Transient stall (thermal recalibration, firmware hiccup): reads
  /// miss their deadline until Recover().  A no-op on a failed disk —
  /// a stall cannot downgrade a failure.
  void Stall();
  /// Restores the drive to healthy from either degraded state.
  void Recover();
  /// Intervals elapsed while the disk was failed or stalled.
  int64_t down_intervals() const { return down_intervals_; }

  // --- per-interval bandwidth ------------------------------------------
  bool busy() const { return busy_; }
  /// Marks the disk busy for the current interval.
  /// Preconditions: currently idle, and available() — the scheduler
  /// must never place load on a failed or stalled disk.
  void Reserve();
  /// Clears the busy flag at an interval boundary and accounts the
  /// elapsed interval for utilization.
  void EndInterval();

  int64_t busy_intervals() const { return busy_intervals_; }
  int64_t total_intervals() const { return total_intervals_; }
  /// Fraction of elapsed intervals this disk spent transferring.
  double Utilization() const {
    return total_intervals_ == 0
               ? 0.0
               : static_cast<double>(busy_intervals_) /
                     static_cast<double>(total_intervals_);
  }

 private:
  DiskId id_;
  int64_t free_cylinders_;
  int64_t total_cylinders_;
  DiskHealth health_ = DiskHealth::kHealthy;
  bool busy_ = false;
  int64_t busy_intervals_ = 0;
  int64_t total_intervals_ = 0;
  int64_t down_intervals_ = 0;
};

}  // namespace stagger

#endif  // STAGGER_DISK_DISK_H_
