// A single simulated disk drive: storage accounting in cylinders plus
// per-interval busy/idle bookkeeping used by the interval scheduler.

#ifndef STAGGER_DISK_DISK_H_
#define STAGGER_DISK_DISK_H_

#include <cstdint>

#include "disk/disk_parameters.h"
#include "util/status.h"
#include "util/units.h"

namespace stagger {

/// Index of a physical disk in the array, 0-based.
using DiskId = int32_t;

/// \brief Health of one drive (fault-injection subsystem, src/fault/).
///
/// A failed disk has lost its media: reads are rejected until an
/// operator-level Recover() (replacement + rebuild).  A stalled disk
/// keeps its data but blows its T_switch budget — any read issued
/// during the stall misses its interval deadline, so the scheduler must
/// treat it exactly like a failure for the stall's duration.  A
/// degraded disk (straggler) still has its data but sustains only a
/// fraction of B_Disk: it can complete a fragment read in some
/// intervals and not others, which the drive models as a deterministic
/// duty cycle over intervals (see Degrade()).
enum class DiskHealth {
  kHealthy,
  kFailed,
  kStalled,
  kDegraded,
};

/// \brief Interval clock shared by every drive of one DiskArray.
///
/// The array advances this single counter at interval close; drives
/// read it lazily for down-time accounting, so health transitions and
/// interval close never walk the drive list.  The struct lives on the
/// heap (owned by the array through a unique_ptr) so drive-held
/// pointers survive moves of the DiskArray itself.
struct IntervalClock {
  /// Intervals closed so far.
  int64_t intervals = 0;
};

/// \brief One simulated drive.
///
/// Storage is allocated in whole cylinders (the fragment granularity of
/// the paper).  A *standalone* drive additionally tracks per-interval
/// busy/idle bookkeeping through Reserve()/EndInterval().  Drives
/// attached to a DiskArray do not: their busy state lives in the
/// array's dense bitmap and counters (DiskArray::ReserveSlot et al.) so
/// the scheduler's reservation hot path touches two cache-resident
/// arrays instead of D scattered objects.
class Disk {
 public:
  Disk(DiskId id, const DiskParameters& params)
      : id_(id), free_cylinders_(params.num_cylinders),
        total_cylinders_(params.num_cylinders) {}

  DiskId id() const { return id_; }

  /// Binds the drive to its array's shared interval clock, which then
  /// supplies the interval count for down-time accounting.  Unattached
  /// drives keep a private interval counter advanced by EndInterval().
  void AttachClock(IntervalClock* clock) { clock_ = clock; }

  // --- storage ---------------------------------------------------------
  int64_t total_cylinders() const { return total_cylinders_; }
  int64_t free_cylinders() const { return free_cylinders_; }
  int64_t used_cylinders() const { return total_cylinders_ - free_cylinders_; }

  /// Reserves `cylinders` of storage; fails with ResourceExhausted when
  /// the drive is full.
  Status AllocateStorage(int64_t cylinders);
  /// Returns previously allocated storage.
  void FreeStorage(int64_t cylinders);

  // --- health (fault injection) ----------------------------------------
  DiskHealth health() const { return health_; }
  /// True when the drive can serve reads this interval.  A degraded
  /// drive is available only on its serving intervals (see Degrade()).
  bool available() const {
    return health_ == DiskHealth::kHealthy ||
           (health_ == DiskHealth::kDegraded && degraded_serving_);
  }
  /// Media loss: the drive rejects reads until Recover().  Idempotent;
  /// failing a stalled or degraded disk escalates to a failure.
  void Fail();
  /// Transient stall (thermal recalibration, firmware hiccup): reads
  /// miss their deadline until Recover().  A no-op on a failed disk —
  /// a stall cannot downgrade a failure.
  void Stall();
  /// Bandwidth degradation (straggler): the drive sustains only
  /// `percent`% of B_Disk until Recover().  A fragment read occupies a
  /// whole interval, so fractional bandwidth is modeled as a duty
  /// cycle: the drive accumulates `percent` units of credit per
  /// interval and serves exactly those intervals where the credit
  /// reaches 100 — over any long window the fraction of serving
  /// intervals converges to percent/100 with no drift and no
  /// randomness.  The first interval of a degrade window never serves
  /// (the slowdown is felt immediately).  Legal only while healthy;
  /// `percent` must be in [1, 99].
  void Degrade(int32_t percent);
  /// Advances the duty cycle of a degraded drive by one interval;
  /// called by DiskArray::EndInterval after the shared clock ticks.
  /// Precondition: health() == kDegraded.
  void AdvanceDegradedInterval();
  /// True when a degraded drive serves reads this interval.
  bool degraded_serving() const { return degraded_serving_; }
  /// The configured bandwidth percentage of a degraded drive; 0 when
  /// the drive is not degraded.
  int32_t degraded_percent() const { return degraded_percent_; }
  /// Restores the drive to healthy from any degraded state.
  void Recover();
  /// Intervals elapsed while the disk was failed or stalled.
  int64_t down_intervals() const {
    return down_accumulated_ +
           (available() ? 0 : now_intervals() - down_since_);
  }

  // --- per-interval bandwidth (standalone drives only) -----------------
  //
  // Array-attached drives keep their busy state in the array's dense
  // structures; use DiskArray::ReserveSlot / SlotBusy / ReserveDrive
  // there.  The methods below serve drives that are not attached to an
  // array (unit tests, single-disk simulations).
  bool busy() const { return busy_; }
  /// Marks the disk busy for the current interval.
  /// Preconditions: currently idle, available() — the scheduler must
  /// never place load on a failed or stalled disk — and unattached.
  void Reserve();
  /// Closes an interval on an UNATTACHED drive: clears the busy flag and
  /// advances the private interval counter.  Array-attached drives are
  /// closed by DiskArray::EndInterval instead.
  void EndInterval();

  int64_t busy_intervals() const { return busy_intervals_; }
  int64_t total_intervals() const { return now_intervals(); }
  /// Fraction of elapsed intervals this disk spent transferring.
  double Utilization() const {
    const int64_t total = now_intervals();
    return total == 0 ? 0.0
                      : static_cast<double>(busy_intervals_) /
                            static_cast<double>(total);
  }

 private:
  int64_t now_intervals() const {
    return clock_ ? clock_->intervals : own_intervals_;
  }

  DiskId id_;
  int64_t free_cylinders_;
  int64_t total_cylinders_;
  DiskHealth health_ = DiskHealth::kHealthy;
  bool busy_ = false;
  int64_t busy_intervals_ = 0;
  IntervalClock* clock_ = nullptr;
  /// Interval counter for drives not attached to an array clock.
  int64_t own_intervals_ = 0;
  /// Down-time bookkeeping is lazy: transitions record the clock, the
  /// getter adds the open span — interval close stays O(reserved).
  int64_t down_accumulated_ = 0;
  int64_t down_since_ = 0;
  /// Degrade duty cycle (health_ == kDegraded only): serving intervals
  /// are paced by an integer error accumulator, Bresenham-style.
  int32_t degraded_percent_ = 0;
  int32_t degraded_credit_ = 0;
  bool degraded_serving_ = false;
};

}  // namespace stagger

#endif  // STAGGER_DISK_DISK_H_
