#include "disk/disk.h"

#include <string>

#include "util/check.h"

namespace stagger {

Status Disk::AllocateStorage(int64_t cylinders) {
  STAGGER_CHECK(cylinders >= 0);
  if (cylinders > free_cylinders_) {
    return Status::ResourceExhausted(
        "disk " + std::to_string(id_) + " has " + std::to_string(free_cylinders_) +
        " free cylinders, need " + std::to_string(cylinders));
  }
  free_cylinders_ -= cylinders;
  return Status::OK();
}

void Disk::FreeStorage(int64_t cylinders) {
  STAGGER_CHECK(cylinders >= 0);
  free_cylinders_ += cylinders;
  STAGGER_CHECK(free_cylinders_ <= total_cylinders_)
      << "disk " << id_ << ": freed more storage than allocated";
}

void Disk::Fail() {
  if (available()) down_since_ = now_intervals();
  health_ = DiskHealth::kFailed;
  degraded_percent_ = 0;
  degraded_credit_ = 0;
  degraded_serving_ = false;
}

void Disk::Stall() {
  if (health_ == DiskHealth::kHealthy) {
    down_since_ = now_intervals();
    health_ = DiskHealth::kStalled;
  }
}

void Disk::Degrade(int32_t percent) {
  STAGGER_CHECK(health_ == DiskHealth::kHealthy)
      << "disk " << id_ << " degraded while not healthy";
  STAGGER_CHECK(percent >= 1 && percent <= 99)
      << "disk " << id_ << ": degrade percent " << percent
      << " outside [1, 99]";
  health_ = DiskHealth::kDegraded;
  degraded_percent_ = percent;
  degraded_credit_ = 0;
  degraded_serving_ = false;
  down_since_ = now_intervals();
}

void Disk::AdvanceDegradedInterval() {
  STAGGER_CHECK(health_ == DiskHealth::kDegraded);
  const bool was = degraded_serving_;
  degraded_credit_ += degraded_percent_;
  degraded_serving_ = degraded_credit_ >= 100;
  if (degraded_serving_) degraded_credit_ -= 100;
  if (was && !degraded_serving_) {
    down_since_ = now_intervals();
  } else if (!was && degraded_serving_) {
    down_accumulated_ += now_intervals() - down_since_;
  }
}

void Disk::Recover() {
  if (!available()) down_accumulated_ += now_intervals() - down_since_;
  health_ = DiskHealth::kHealthy;
  degraded_percent_ = 0;
  degraded_credit_ = 0;
  degraded_serving_ = false;
}

void Disk::Reserve() {
  STAGGER_DCHECK(clock_ == nullptr)
      << "disk " << id_
      << ": array-attached drives are reserved through DiskArray";
  STAGGER_CHECK(!busy_) << "disk " << id_ << " reserved twice in one interval";
  STAGGER_CHECK(available())
      << "disk " << id_ << " reserved while failed or stalled";
  busy_ = true;
  // Reserve() and interval close are balanced within every interval, so
  // counting busy intervals here (instead of at close) is equivalent and
  // keeps the close itself allocation- and walk-free.
  ++busy_intervals_;
}

void Disk::EndInterval() {
  STAGGER_DCHECK(clock_ == nullptr)
      << "disk " << id_
      << ": array-attached drives are closed by DiskArray::EndInterval";
  ++own_intervals_;
  busy_ = false;
}

}  // namespace stagger
