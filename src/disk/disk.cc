#include "disk/disk.h"

#include <string>

#include "util/check.h"

namespace stagger {

Status Disk::AllocateStorage(int64_t cylinders) {
  STAGGER_CHECK(cylinders >= 0);
  if (cylinders > free_cylinders_) {
    return Status::ResourceExhausted(
        "disk " + std::to_string(id_) + " has " + std::to_string(free_cylinders_) +
        " free cylinders, need " + std::to_string(cylinders));
  }
  free_cylinders_ -= cylinders;
  return Status::OK();
}

void Disk::FreeStorage(int64_t cylinders) {
  STAGGER_CHECK(cylinders >= 0);
  free_cylinders_ += cylinders;
  STAGGER_CHECK(free_cylinders_ <= total_cylinders_)
      << "disk " << id_ << ": freed more storage than allocated";
}

void Disk::Fail() { health_ = DiskHealth::kFailed; }

void Disk::Stall() {
  if (health_ == DiskHealth::kHealthy) health_ = DiskHealth::kStalled;
}

void Disk::Recover() { health_ = DiskHealth::kHealthy; }

void Disk::Reserve() {
  STAGGER_CHECK(!busy_) << "disk " << id_ << " reserved twice in one interval";
  STAGGER_CHECK(available())
      << "disk " << id_ << " reserved while failed or stalled";
  busy_ = true;
}

void Disk::EndInterval() {
  ++total_intervals_;
  if (busy_) ++busy_intervals_;
  if (!available()) ++down_intervals_;
  busy_ = false;
}

}  // namespace stagger
