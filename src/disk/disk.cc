#include "disk/disk.h"

#include <string>

#include "util/check.h"

namespace stagger {

Status Disk::AllocateStorage(int64_t cylinders) {
  STAGGER_CHECK(cylinders >= 0);
  if (cylinders > free_cylinders_) {
    return Status::ResourceExhausted(
        "disk " + std::to_string(id_) + " has " + std::to_string(free_cylinders_) +
        " free cylinders, need " + std::to_string(cylinders));
  }
  free_cylinders_ -= cylinders;
  return Status::OK();
}

void Disk::FreeStorage(int64_t cylinders) {
  STAGGER_CHECK(cylinders >= 0);
  free_cylinders_ += cylinders;
  STAGGER_CHECK(free_cylinders_ <= total_cylinders_)
      << "disk " << id_ << ": freed more storage than allocated";
}

void Disk::Reserve() {
  STAGGER_CHECK(!busy_) << "disk " << id_ << " reserved twice in one interval";
  busy_ = true;
}

void Disk::EndInterval() {
  ++total_intervals_;
  if (busy_) ++busy_intervals_;
  busy_ = false;
}

}  // namespace stagger
