#include "disk/disk_sim.h"

#include <string>
#include <utility>

namespace stagger {

SimulatedDisk::SimulatedDisk(Simulator* sim, const DiskParameters& params,
                             uint64_t seed)
    : sim_(sim), params_(params), rng_(seed) {
  STAGGER_CHECK(params_.Validate().ok()) << "invalid disk parameters";
}

Status SimulatedDisk::SubmitRead(int64_t cylinder, int64_t cylinders,
                                 DoneFn done) {
  if (cylinder < 0 || cylinders < 1 ||
      cylinder + cylinders > params_.num_cylinders) {
    return Status::InvalidArgument(
        "read [" + std::to_string(cylinder) + ", " +
        std::to_string(cylinder + cylinders) + ") outside the disk");
  }
  queue_.push_back(Request{cylinder, cylinders, std::move(done)});
  if (!busy_) StartNext();
  return Status::OK();
}

void SimulatedDisk::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request req = std::move(queue_.front());
  queue_.pop_front();

  const SimTime seek = params_.SeekTime(req.cylinder - head_);
  // Rotational latency: uniform over one revolution, [0, max_latency].
  const SimTime latency = SimTime::Micros(static_cast<int64_t>(
      rng_.NextDouble() * static_cast<double>(params_.max_latency.micros())));
  const SimTime transfer = params_.FragmentTransferTime(req.cylinders);
  const SimTime service = seek + latency + transfer;

  seek_time_ += seek;
  latency_time_ += latency;
  transfer_time_ += transfer;
  head_ = req.cylinder + req.cylinders - 1;

  sim_->ScheduleAfter(service, [this, req = std::move(req), service] {
    ++completed_;
    bytes_read_ += req.cylinders * params_.cylinder_capacity.bytes();
    service_stats_.Add(service.seconds());
    if (req.done) req.done(service);
    StartNext();
  });
}

Bandwidth SimulatedDisk::MeasuredEffectiveBandwidth() const {
  const double busy_sec =
      (seek_time_ + latency_time_ + transfer_time_).seconds();
  if (busy_sec <= 0.0) return Bandwidth::BitsPerSec(0);
  return Bandwidth::BitsPerSec(static_cast<double>(bytes_read_) * 8.0 /
                               busy_sec);
}

}  // namespace stagger
