#include "disk/disk_array.h"

#include <algorithm>

#include "util/check.h"

namespace stagger {

Result<DiskArray> DiskArray::Create(int32_t num_disks, const DiskParameters& params) {
  if (num_disks < 1) {
    return Status::InvalidArgument("disk array needs at least one disk");
  }
  STAGGER_RETURN_NOT_OK(params.Validate());
  std::vector<Disk> disks;
  disks.reserve(static_cast<size_t>(num_disks));
  for (int32_t i = 0; i < num_disks; ++i) disks.emplace_back(i, params);
  return DiskArray(std::move(disks), params);
}

bool DiskArray::RunIsIdle(DiskId start, int32_t len) const {
  STAGGER_CHECK(len >= 0 && len <= num_disks());
  for (int32_t i = 0; i < len; ++i) {
    if (disk(Wrap(static_cast<int64_t>(start) + i)).busy()) return false;
  }
  return true;
}

void DiskArray::ReserveRun(DiskId start, int32_t len) {
  for (int32_t i = 0; i < len; ++i) {
    disk(Wrap(static_cast<int64_t>(start) + i)).Reserve();
  }
}

int32_t DiskArray::IdleCount() const {
  int32_t idle = 0;
  for (const Disk& d : disks_) {
    if (!d.busy()) ++idle;
  }
  return idle;
}

int32_t DiskArray::AvailableCount() const {
  int32_t available = 0;
  for (const Disk& d : disks_) {
    if (d.available()) ++available;
  }
  return available;
}

void DiskArray::EndInterval() {
  for (Disk& d : disks_) d.EndInterval();
}

int64_t DiskArray::TotalCylinders() const {
  int64_t total = 0;
  for (const Disk& d : disks_) total += d.total_cylinders();
  return total;
}

int64_t DiskArray::FreeCylinders() const {
  int64_t free = 0;
  for (const Disk& d : disks_) free += d.free_cylinders();
  return free;
}

double DiskArray::MeanUtilization() const {
  double sum = 0.0;
  for (const Disk& d : disks_) sum += d.Utilization();
  return sum / static_cast<double>(disks_.size());
}

double DiskArray::MaxUtilization() const {
  double best = 0.0;
  for (const Disk& d : disks_) best = std::max(best, d.Utilization());
  return best;
}

double DiskArray::MinUtilization() const {
  double best = 1.0;
  for (const Disk& d : disks_) best = std::min(best, d.Utilization());
  return best;
}

int64_t DiskArray::MaxUsedCylinders() const {
  int64_t best = 0;
  for (const Disk& d : disks_) best = std::max(best, d.used_cylinders());
  return best;
}

int64_t DiskArray::MinUsedCylinders() const {
  int64_t best = disks_.empty() ? 0 : disks_[0].used_cylinders();
  for (const Disk& d : disks_) best = std::min(best, d.used_cylinders());
  return best;
}

}  // namespace stagger
