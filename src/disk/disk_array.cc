#include "disk/disk_array.h"

#include <algorithm>

#include "util/check.h"

namespace stagger {

Result<DiskArray> DiskArray::Create(int32_t num_disks, const DiskParameters& params,
                                    int32_t num_spares) {
  if (num_disks < 1) {
    return Status::InvalidArgument("disk array needs at least one disk");
  }
  if (num_spares < 0) {
    return Status::InvalidArgument("spare count must be >= 0");
  }
  STAGGER_RETURN_NOT_OK(params.Validate());
  std::vector<Disk> drives;
  drives.reserve(static_cast<size_t>(num_disks + num_spares));
  for (int32_t i = 0; i < num_disks + num_spares; ++i) {
    drives.emplace_back(i, params);
  }
  return DiskArray(std::move(drives), params, num_disks, num_spares);
}

DiskArray::DiskArray(std::vector<Disk> drives, DiskParameters params,
                     int32_t num_slots, int32_t num_spares)
    : drives_(std::move(drives)), params_(params), num_slots_(num_slots),
      num_spares_(num_spares), clock_(std::make_unique<IntervalClock>()),
      latent_errors_(std::make_unique<LatentErrorMap>()) {
  latent_errors_->AttachClock(clock_.get());
  slot_to_drive_.resize(static_cast<size_t>(num_slots));
  for (int32_t i = 0; i < num_slots; ++i) slot_to_drive_[static_cast<size_t>(i)] = i;
  for (int32_t s = 0; s < num_spares; ++s) free_spares_.push_back(num_slots + s);
  for (Disk& d : drives_) d.AttachClock(clock_.get());
  busy_drives_.Resize(static_cast<int32_t>(drives_.size()));
  drive_busy_intervals_.assign(drives_.size(), 0);
  unavailable_slots_.Resize(num_slots);
}

bool DiskArray::RunIsIdle(DiskId start, int32_t len) const {
  STAGGER_CHECK(len >= 0 && len <= num_disks());
  for (int32_t i = 0; i < len; ++i) {
    if (SlotBusy(Wrap(static_cast<int64_t>(start) + i))) return false;
  }
  return true;
}

void DiskArray::ReserveRunRemapped(DiskId start, int32_t len) {
  for (int32_t i = 0; i < len; ++i) {
    ReserveSlot(Wrap(static_cast<int64_t>(start) + i));
  }
}

int32_t DiskArray::IdleCount() const {
  int32_t idle = 0;
  for (int32_t d = 0; d < num_slots_; ++d) {
    if (!SlotBusy(d)) ++idle;
  }
  return idle;
}

int32_t DiskArray::IdleAvailableCount() const {
  int32_t idle = 0;
  for (int32_t d = 0; d < num_slots_; ++d) {
    if (!SlotBusy(d) && !unavailable_slots_.Test(d)) ++idle;
  }
  return idle;
}

void DiskArray::NoteAvailabilityChange(DiskId slot, bool was) {
  const bool now = disk(slot).available();
  if (was == now) return;
  if (now) {
    unavailable_slots_.Clear(slot);
    --unavailable_count_;
  } else {
    unavailable_slots_.Set(slot);
    ++unavailable_count_;
  }
}

void DiskArray::DropDegradedSlot(DiskId slot) {
  auto it = std::lower_bound(degraded_slots_.begin(), degraded_slots_.end(), slot);
  if (it != degraded_slots_.end() && *it == slot) degraded_slots_.erase(it);
}

void DiskArray::FailDisk(DiskId id) {
  const DiskId slot = Wrap(id);
  const bool was = disk(slot).available();
  if (disk(slot).health() == DiskHealth::kDegraded) DropDegradedSlot(slot);
  disk(slot).Fail();
  NoteAvailabilityChange(slot, was);
}

void DiskArray::StallDisk(DiskId id) {
  const DiskId slot = Wrap(id);
  const bool was = disk(slot).available();
  disk(slot).Stall();
  NoteAvailabilityChange(slot, was);
}

void DiskArray::DegradeDisk(DiskId id, int32_t percent) {
  const DiskId slot = Wrap(id);
  const bool was = disk(slot).available();
  disk(slot).Degrade(percent);
  auto it = std::lower_bound(degraded_slots_.begin(), degraded_slots_.end(), slot);
  STAGGER_CHECK(it == degraded_slots_.end() || *it != slot);
  degraded_slots_.insert(it, slot);
  NoteAvailabilityChange(slot, was);
}

void DiskArray::RecoverDisk(DiskId id) {
  const DiskId slot = Wrap(id);
  const bool was = disk(slot).available();
  if (disk(slot).health() == DiskHealth::kDegraded) DropDegradedSlot(slot);
  disk(slot).Recover();
  NoteAvailabilityChange(slot, was);
}

Result<int32_t> DiskArray::AcquireSpare() {
  if (free_spares_.empty()) {
    return Status::ResourceExhausted("no free hot-spare drive");
  }
  const int32_t drive = free_spares_.back();
  free_spares_.pop_back();
  claimed_spares_.push_back(drive);
  return drive;
}

void DiskArray::ReturnSpare(int32_t drive) {
  auto it = std::find(claimed_spares_.begin(), claimed_spares_.end(), drive);
  STAGGER_CHECK(it != claimed_spares_.end())
      << "drive " << drive << " is not a claimed spare";
  claimed_spares_.erase(it);
  free_spares_.push_back(drive);
}

Disk& DiskArray::spare_drive(int32_t drive) {
  STAGGER_CHECK(std::find(claimed_spares_.begin(), claimed_spares_.end(),
                          drive) != claimed_spares_.end())
      << "drive " << drive << " is not a claimed spare";
  return drives_[static_cast<size_t>(drive)];
}

void DiskArray::PromoteSpare(DiskId slot, int32_t drive) {
  STAGGER_CHECK(slot >= 0 && slot < num_slots_) << "bad slot " << slot;
  auto it = std::find(claimed_spares_.begin(), claimed_spares_.end(), drive);
  STAGGER_CHECK(it != claimed_spares_.end())
      << "drive " << drive << " is not a claimed spare";
  Disk& old = drives_[DriveOf(slot)];
  STAGGER_CHECK(old.health() == DiskHealth::kFailed)
      << "slot " << slot << " promoted while its drive is not failed";
  Disk& fresh = drives_[static_cast<size_t>(drive)];
  // Carry the slot's storage accounting over so later frees balance.
  const int64_t used = old.used_cylinders();
  STAGGER_CHECK_OK(fresh.AllocateStorage(used));
  old.FreeStorage(used);
  claimed_spares_.erase(it);
  slot_to_drive_[static_cast<size_t>(slot)] = drive;
  // Adjacent slots may now straddle non-adjacent drives, so ReserveRun
  // must fall back to per-slot reservation from here on.
  dense_slots_ = false;
  // The slot flips from failed to healthy: its new drive is fresh.
  NoteAvailabilityChange(slot, /*was=*/false);
  // The rebuilt content was reconstructed from verified survivors onto
  // fresh media, so whatever latent errors the dead drive carried are
  // gone with it.
  latent_errors_->DropDiskRebuilt(slot);
  // The dead drive stays retired: it is reachable by no slot and never
  // returns to the spare pool.
}

STAGGER_HOT_PATH void DiskArray::EndInterval() {
  // Fold this interval's reservations into the per-drive busy counts
  // here rather than in ReserveDrive: the bitmap walk visits drives in
  // ascending order, so the counter array fills sequentially
  // (prefetch-friendly) instead of being hit in placement order from
  // the scheduler's read loop.
  busy_drives_.ForEachSet(
      [this](int32_t drive) { ++drive_busy_intervals_[static_cast<size_t>(drive)]; });
  busy_drives_.ClearAll();
  ++clock_->intervals;
  if (!degraded_slots_.empty()) {
    // Advance the stragglers' duty cycles so the availability bitmap is
    // right for the interval that just opened.
    for (const DiskId slot : degraded_slots_) {
      Disk& d = disk(slot);
      const bool was = d.available();
      d.AdvanceDegradedInterval();
      NoteAvailabilityChange(slot, was);
    }
    degraded_disk_intervals_ += static_cast<int64_t>(degraded_slots_.size());
  }
}

int64_t DiskArray::TotalCylinders() const {
  int64_t total = 0;
  for (int32_t d = 0; d < num_slots_; ++d) total += disk(d).total_cylinders();
  return total;
}

int64_t DiskArray::FreeCylinders() const {
  int64_t free = 0;
  for (int32_t d = 0; d < num_slots_; ++d) free += disk(d).free_cylinders();
  return free;
}

double DiskArray::MeanUtilization() const {
  double sum = 0.0;
  for (int32_t d = 0; d < num_slots_; ++d) sum += SlotUtilization(d);
  return sum / static_cast<double>(num_slots_);
}

double DiskArray::MaxUtilization() const {
  double best = 0.0;
  for (int32_t d = 0; d < num_slots_; ++d) {
    best = std::max(best, SlotUtilization(d));
  }
  return best;
}

double DiskArray::MinUtilization() const {
  double best = 1.0;
  for (int32_t d = 0; d < num_slots_; ++d) {
    best = std::min(best, SlotUtilization(d));
  }
  return best;
}

int64_t DiskArray::MaxUsedCylinders() const {
  int64_t best = 0;
  for (int32_t d = 0; d < num_slots_; ++d) {
    best = std::max(best, disk(d).used_cylinders());
  }
  return best;
}

int64_t DiskArray::MinUsedCylinders() const {
  int64_t best = num_slots_ == 0 ? 0 : disk(0).used_cylinders();
  for (int32_t d = 0; d < num_slots_; ++d) {
    best = std::min(best, disk(d).used_cylinders());
  }
  return best;
}

}  // namespace stagger
