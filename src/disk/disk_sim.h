// Event-driven simulation of a single drive, below the interval
// abstraction: every read pays an actual seek (distance-dependent), a
// sampled rotational latency, and the transfer time.  Used to validate
// the interval scheduler's worst-case T_switch budgeting and to answer
// the paper's future-work question — "how much can we increase our
// effective bandwidth" when the schedule does not have to assume the
// maximum seek and latency (bench_seek_model).

#ifndef STAGGER_DISK_DISK_SIM_H_
#define STAGGER_DISK_DISK_SIM_H_

#include <deque>
#include <functional>

#include "disk/disk_parameters.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace stagger {

/// \brief One drive served FIFO on the discrete-event kernel.
class SimulatedDisk {
 public:
  /// \param sim    kernel; must outlive the disk.
  /// \param params drive model.
  /// \param seed   rotational-latency sampling seed.
  SimulatedDisk(Simulator* sim, const DiskParameters& params, uint64_t seed);

  /// Completion callback: service time of this read (queueing excluded).
  using DoneFn = std::function<void(SimTime)>;

  /// Enqueues a read of `cylinders` consecutive cylinders starting at
  /// `cylinder`.  Service = seek from current head position + one
  /// rotational latency + transfer (with single-track seeks between
  /// consecutive cylinders).
  Status SubmitRead(int64_t cylinder, int64_t cylinders, DoneFn done);

  int64_t completed_reads() const { return completed_; }
  int64_t head_position() const { return head_; }
  size_t queue_length() const { return queue_.size(); }
  bool busy() const { return busy_; }

  /// Total time spent seeking / rotating / transferring.
  SimTime seek_time() const { return seek_time_; }
  SimTime latency_time() const { return latency_time_; }
  SimTime transfer_time() const { return transfer_time_; }

  /// Bytes delivered per second of *device busy time* — the measured
  /// effective bandwidth.
  Bandwidth MeasuredEffectiveBandwidth() const;

  /// Per-read service-time statistics (seconds).
  const StreamingStats& service_stats() const { return service_stats_; }

 private:
  struct Request {
    int64_t cylinder;
    int64_t cylinders;
    DoneFn done;
  };
  void StartNext();

  Simulator* sim_;
  DiskParameters params_;
  Rng rng_;
  std::deque<Request> queue_;
  bool busy_ = false;
  int64_t head_ = 0;
  int64_t completed_ = 0;
  int64_t bytes_read_ = 0;
  SimTime seek_time_;
  SimTime latency_time_;
  SimTime transfer_time_;
  StreamingStats service_stats_;
};

}  // namespace stagger

#endif  // STAGGER_DISK_DISK_SIM_H_
