// Latent sector errors: media regions that silently return corrupt
// content, discovered only when somebody actually reads (or scrubs)
// them.
//
// A *cell* is one (disk, subobject-row) media region of the staggered
// layout: the fragment a stripe at row `subobject` stores on `disk`
// lives there, whatever object owns the stripe.  Injecting a latent
// error marks a run of cells corrupt; the disk keeps serving reads —
// availability is untouched — but any fragment read out of a corrupt
// cell carries a wrong content word until the cell is repaired.
//
// Detection and repair are the readers' job (checksums on the display
// path, the scrubber's verify pass, the rebuild's source reads); this
// registry only keeps the authoritative cell state and the
// injected/detected/repaired accounting, stamped in interval counts of
// the owning array's IntervalClock so mean-time-to-repair is computable
// without threading simulation time through every caller.
//
// Media-level semantics: cells survive fail -> recover (the platters
// come back as they were) and object churn (a new object inherits the
// region), and are cleared only by an explicit Repair (a verified
// rewrite) or by DropDiskRebuilt (a spare promotion replaces the whole
// medium).

#ifndef STAGGER_DISK_LATENT_ERRORS_H_
#define STAGGER_DISK_LATENT_ERRORS_H_

#include <cstdint>
#include <map>

#include "disk/disk.h"
#include "util/stats.h"

namespace stagger {

/// \brief Counters reported by the latent-error registry.
struct LatentErrorMetrics {
  int64_t injected = 0;            ///< cells ever marked corrupt
  int64_t detected = 0;            ///< cells found by some read path
  int64_t repaired = 0;            ///< cells repaired by a verified rewrite
  int64_t repaired_by_rebuild = 0; ///< cells cleared with a rebuilt slot
  /// Injection-to-repair spans, in intervals (both repair flavors).
  StreamingStats time_to_repair_intervals;
};

/// \brief Authoritative map of corrupt media cells of one disk array.
class LatentErrorMap {
 public:
  struct Cell {
    int64_t injected_interval = 0;
    int64_t detected_interval = -1;  ///< -1 until some reader notices
  };

  /// Binds the registry to the array's shared interval clock; all
  /// timestamps below are that clock's interval count.
  void AttachClock(const IntervalClock* clock) { clock_ = clock; }

  /// Marks cells [sub_lo, sub_hi] of `disk` corrupt; already-corrupt
  /// cells are left as they are (their original injection stands).
  /// Returns the number of newly corrupt cells.
  int64_t Inject(DiskId disk, int64_t sub_lo, int64_t sub_hi);

  /// True when any cell is corrupt.  O(1): the read paths gate their
  /// per-read IsCorrupt lookups on this.
  bool active() const { return active_cells_ > 0; }
  int64_t ActiveCells() const { return active_cells_; }

  /// True when the fragment at row `subobject` of `disk` would read
  /// back corrupt.
  bool IsCorrupt(DiskId disk, int64_t subobject) const;

  /// Records that a reader noticed the corruption (checksum mismatch).
  /// Returns true when this is the first detection of the cell.
  /// Precondition: IsCorrupt(disk, subobject).
  bool MarkDetected(DiskId disk, int64_t subobject);

  /// Clears a corrupt cell after a verified rewrite (scrub repair).
  /// Precondition: IsCorrupt(disk, subobject).
  void Repair(DiskId disk, int64_t subobject);

  /// Drops every cell of `disk`: its slot was rewired onto a freshly
  /// rebuilt spare, so the corrupt medium is gone.  Returns the number
  /// of cells dropped (counted as repaired_by_rebuild).
  int64_t DropDiskRebuilt(DiskId disk);

  /// Full cell map, for the scrubber's orphan sweep.  Deterministic
  /// iteration order (ordered by disk, then row).
  const std::map<DiskId, std::map<int64_t, Cell>>& cells() const {
    return cells_;
  }

  const LatentErrorMetrics& metrics() const { return metrics_; }

 private:
  int64_t now() const { return clock_ ? clock_->intervals : 0; }

  const IntervalClock* clock_ = nullptr;
  std::map<DiskId, std::map<int64_t, Cell>> cells_;
  int64_t active_cells_ = 0;
  LatentErrorMetrics metrics_;
};

}  // namespace stagger

#endif  // STAGGER_DISK_LATENT_ERRORS_H_
