// Parametric magnetic-disk model.  Captures everything the paper uses
// from a drive: geometry (cylinders), transfer rate, seek and rotational
// latency envelopes — and derives the quantities of Section 3.1:
// T_switch, effective bandwidth vs. fragment size, cluster service time
// S(C_i), wasted-bandwidth fraction, and the minimum per-disk buffer
// memory of Equation (1).
//
// Two presets are provided:
//  * Sabre1_2GB()  — the IMPRIMIS Sabre 8" drive used for the Section 3.1
//                    arithmetic (1635 cylinders x 756 000 B, 24.19 mbps).
//  * Evaluation()  — the Table 3 simulation disk (3000 cylinders x
//                    1.512 MB, effective B_Disk = 20 mbps).

#ifndef STAGGER_DISK_DISK_PARAMETERS_H_
#define STAGGER_DISK_DISK_PARAMETERS_H_

#include <cstdint>

#include "util/result.h"
#include "util/status.h"
#include "util/units.h"

namespace stagger {

/// \brief Static description of one disk drive model.
struct DiskParameters {
  int64_t num_cylinders = 0;
  DataSize cylinder_capacity;
  DataSize sector_size = DataSize::Bytes(512);
  /// Raw media transfer rate (tfr in the paper).
  Bandwidth transfer_rate;
  SimTime min_seek;      ///< single-track (adjacent-cylinder) seek
  SimTime avg_seek;
  SimTime max_seek;      ///< full-stroke seek
  SimTime avg_latency;   ///< half a rotation
  SimTime max_latency;   ///< full rotation

  /// The paper's Section 3.1 drive (IMPRIMIS Sabre, [Sab90]).
  static DiskParameters Sabre1_2GB();
  /// The Table 3 evaluation drive (4.54 GB, B_Disk = 20 mbps effective).
  static DiskParameters Evaluation();

  /// Validates internal consistency (positive sizes, seek ordering...).
  Status Validate() const;

  /// Total formatted capacity.
  DataSize Capacity() const { return cylinder_capacity * num_cylinders; }

  /// Worst-case head-repositioning delay when a cluster is activated:
  /// T_switch = max seek + max rotational latency.
  SimTime TSwitch() const { return max_seek + max_latency; }

  /// Time to transfer one sector at the raw rate (T_sector).
  SimTime TSector() const { return TransferTime(sector_size, transfer_rate); }

  /// Time to read one full cylinder at the raw rate (the paper's 250 ms
  /// for the Sabre).  A cylinder is read with no intervening seeks.
  SimTime CylinderReadTime() const {
    return TransferTime(cylinder_capacity, transfer_rate);
  }

  /// Transfer component of reading a fragment spanning `cylinders`
  /// consecutive cylinders: full-speed reads plus a single-track seek
  /// between consecutive cylinders.
  SimTime FragmentTransferTime(int64_t cylinders) const;

  /// Service time of a cluster activation, S(C_i) = T_switch + transfer.
  /// With the Sabre and 1-cylinder fragments this is the paper's
  /// 301.83 ms; with 2 cylinders, 555.83 ms.
  SimTime ServiceTime(int64_t fragment_cylinders) const {
    return TSwitch() + FragmentTransferTime(fragment_cylinders);
  }

  /// Effective sustained bandwidth for a given fragment size:
  ///   B_disk = tfr * size / (size + T_switch * tfr).
  Bandwidth EffectiveBandwidth(DataSize fragment_size) const;

  /// Effective bandwidth when fragments span whole cylinders (accounts
  /// for the inter-cylinder single-track seeks as well).
  Bandwidth EffectiveBandwidthCylinders(int64_t fragment_cylinders) const;

  /// Fraction of raw bandwidth lost to seek+latency per activation when
  /// reading `fragment_cylinders` cylinders (the paper's 17.2 % / ~10 %).
  double WastedBandwidthFraction(int64_t fragment_cylinders) const;

  /// Equation (1): minimum per-disk buffer memory that hides a cluster
  /// switch, B_disk * (T_switch + T_sector).
  DataSize MinBufferMemory(DataSize fragment_size) const;

  /// Seek time for a head movement of `distance` cylinders: 0 when the
  /// head does not move, otherwise linear between min_seek (distance 1)
  /// and max_seek (full stroke).
  SimTime SeekTime(int64_t distance) const;
};

}  // namespace stagger

#endif  // STAGGER_DISK_DISK_PARAMETERS_H_
