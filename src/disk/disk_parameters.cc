#include "disk/disk_parameters.h"

#include <cmath>

namespace stagger {

DiskParameters DiskParameters::Sabre1_2GB() {
  DiskParameters p;
  p.num_cylinders = 1635;
  p.cylinder_capacity = DataSize::Bytes(756000);
  p.sector_size = DataSize::Bytes(512);
  p.transfer_rate = Bandwidth::Mbps(24.19);
  p.min_seek = SimTime::Millis(4);
  p.avg_seek = SimTime::Millis(15);
  p.max_seek = SimTime::Millis(35);
  p.avg_latency = SimTime::Micros(8330);
  p.max_latency = SimTime::Micros(16830);
  return p;
}

DiskParameters DiskParameters::Evaluation() {
  DiskParameters p;
  p.num_cylinders = 3000;
  p.cylinder_capacity = DataSize::MB(1.512);
  p.sector_size = DataSize::Bytes(512);
  // Table 3 specifies the *effective* B_Disk = 20 mbps directly; model it
  // as the raw rate so one cylinder takes exactly 604.8 ms and 3000
  // subobjects display in the paper's 1814 s.  Seek/latency figures are
  // retained for T_switch-based admission pacing.
  p.transfer_rate = Bandwidth::Mbps(20);
  p.min_seek = SimTime::Millis(4);
  p.avg_seek = SimTime::Millis(15);
  p.max_seek = SimTime::Millis(35);
  p.avg_latency = SimTime::Micros(8330);
  p.max_latency = SimTime::Micros(16830);
  return p;
}

Status DiskParameters::Validate() const {
  if (num_cylinders <= 0) {
    return Status::InvalidArgument("disk must have a positive cylinder count");
  }
  if (cylinder_capacity.bytes() <= 0) {
    return Status::InvalidArgument("cylinder capacity must be positive");
  }
  if (sector_size.bytes() <= 0 || sector_size > cylinder_capacity) {
    return Status::InvalidArgument("sector size must be in (0, cylinder]");
  }
  if (transfer_rate.bits_per_sec() <= 0) {
    return Status::InvalidArgument("transfer rate must be positive");
  }
  if (min_seek < SimTime::Zero() || min_seek > avg_seek || avg_seek > max_seek) {
    return Status::InvalidArgument("seek times must satisfy 0 <= min <= avg <= max");
  }
  if (avg_latency < SimTime::Zero() || avg_latency > max_latency) {
    return Status::InvalidArgument("latency times must satisfy 0 <= avg <= max");
  }
  return Status::OK();
}

SimTime DiskParameters::FragmentTransferTime(int64_t cylinders) const {
  STAGGER_CHECK(cylinders >= 1) << "fragment must span at least one cylinder";
  return CylinderReadTime() * cylinders + min_seek * (cylinders - 1);
}

Bandwidth DiskParameters::EffectiveBandwidth(DataSize fragment_size) const {
  STAGGER_CHECK(fragment_size.bytes() > 0);
  const double size_bits = fragment_size.bits();
  const double overhead_bits = TSwitch().seconds() * transfer_rate.bits_per_sec();
  return transfer_rate * (size_bits / (size_bits + overhead_bits));
}

Bandwidth DiskParameters::EffectiveBandwidthCylinders(int64_t fragment_cylinders) const {
  const DataSize size = cylinder_capacity * fragment_cylinders;
  const double seconds = ServiceTime(fragment_cylinders).seconds();
  return Bandwidth::BitsPerSec(size.bits() / seconds);
}

double DiskParameters::WastedBandwidthFraction(int64_t fragment_cylinders) const {
  const SimTime service = ServiceTime(fragment_cylinders);
  const SimTime overhead = TSwitch() + min_seek * (fragment_cylinders - 1);
  return overhead.seconds() / service.seconds();
}

DataSize DiskParameters::MinBufferMemory(DataSize fragment_size) const {
  const Bandwidth b_disk = EffectiveBandwidth(fragment_size);
  const double seconds = (TSwitch() + TSector()).seconds();
  return DataSize::Bytes(
      static_cast<int64_t>(std::ceil(b_disk.bits_per_sec() * seconds / 8.0)));
}

SimTime DiskParameters::SeekTime(int64_t distance) const {
  if (distance < 0) distance = -distance;
  if (distance == 0) return SimTime::Zero();
  if (distance >= num_cylinders - 1 || num_cylinders <= 2) return max_seek;
  // Linear interpolation between single-track and full-stroke seeks.
  const double frac = static_cast<double>(distance - 1) /
                      static_cast<double>(num_cylinders - 2);
  const double micros = static_cast<double>(min_seek.micros()) +
                        frac * static_cast<double>((max_seek - min_seek).micros());
  return SimTime::Micros(static_cast<int64_t>(micros + 0.5));
}

}  // namespace stagger
