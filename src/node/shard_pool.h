// EpochPool: the shard worker pool behind the scheduler's fork/join
// tick.  Each ParallelFor call is one *epoch*: the caller publishes a
// task batch under the pool mutex, wakes the workers, works alongside
// them, and returns only when every task has run to completion — the
// epoch barrier that keeps all shards on the same interval boundary.
//
// Task claiming is a bounded compare-exchange over a cursor that is
// MONOTONE across epochs: epoch e owns the cursor range
// [base_e, base_e + num_tasks_e), and bases never repeat.  A worker
// that oversleeps an epoch wakes holding a stale (base, bound) pair,
// but its bound is below every later epoch's base, so its CAS can never
// succeed against a later epoch's range — it claims nothing, runs
// nothing, and goes back to sleep.  That property is what makes it safe
// for ParallelFor to return (destroying the caller-owned task closure)
// while a straggler is still waking up.
//
// Determinism: the pool only decides *where* a task index runs, never
// what it observes — task bodies touch exclusively per-index state (the
// scheduler's journal contract), so any claim order is observationally
// identical to the serial loop.

#ifndef STAGGER_NODE_SHARD_POOL_H_
#define STAGGER_NODE_SHARD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/shard_executor.h"
#include "util/thread_annotations.h"

namespace stagger {

/// \brief Fork/join pool with an epoch barrier per ParallelFor call.
class EpochPool : public ShardExecutor {
 public:
  /// `num_threads` counts the calling thread: a pool of N spawns N-1
  /// workers and the ParallelFor caller supplies the Nth lane.  Values
  /// below 2 spawn nothing and run tasks inline.
  explicit EpochPool(int32_t num_threads);
  ~EpochPool() override;

  EpochPool(const EpochPool&) = delete;
  EpochPool& operator=(const EpochPool&) = delete;

  void ParallelFor(int32_t num_tasks,
                   const std::function<void(int32_t)>& fn) override;

  int32_t num_threads() const { return num_threads_; }

  /// Epochs dispatched to workers (inline fast-path calls excluded);
  /// observability for tests and the tick-rate stats.
  int64_t epochs_dispatched() const {
    return epochs_dispatched_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  /// Claims and runs tasks of the epoch whose cursor range is
  /// [base, base + count); returns the number of tasks this thread ran.
  int32_t RunTasks(uint64_t base, int32_t count,
                   const std::function<void(int32_t)>& fn);

  /// condition_variable_any unlocks/relocks mu_ inside wait(); the
  /// analysis cannot see through it, so the wrapper re-asserts the
  /// capability it provably re-holds on return.
  void WaitForEpochLocked(uint64_t seen) STAGGER_REQUIRES(mu_) {
    while (!shutdown_ && epoch_ == seen) cv_.wait(mu_);
  }

  const int32_t num_threads_;

  Mutex mu_;
  std::condition_variable_any cv_;
  uint64_t epoch_ STAGGER_GUARDED_BY(mu_) = 0;
  uint64_t epoch_base_ STAGGER_GUARDED_BY(mu_) = 0;
  int32_t epoch_tasks_ STAGGER_GUARDED_BY(mu_) = 0;
  const std::function<void(int32_t)>* epoch_fn_ STAGGER_GUARDED_BY(mu_) =
      nullptr;
  bool shutdown_ STAGGER_GUARDED_BY(mu_) = false;

  // Claim cursor and cumulative completion count, both monotone across
  // epochs (see file comment for why monotone claiming is load-bearing).
  // Padded apart: the cursor is hammered by claimers while the caller
  // spins on the completion count.
  alignas(64) std::atomic<uint64_t> cursor_{0};
  alignas(64) std::atomic<uint64_t> done_{0};
  std::atomic<int64_t> epochs_dispatched_{0};

  std::vector<std::thread> workers_;
};

}  // namespace stagger

#endif  // STAGGER_NODE_SHARD_POOL_H_
