// Disk-to-shard topology: the D physical disks partitioned into S
// contiguous, balanced slices ("node groups").  Slice s owns the
// half-open global range [D*s/S, D*(s+1)/S), so slice sizes differ by
// at most one disk and every boundary is a pure function of (D, S).
//
// Staggered striping itself stays GLOBAL — a layout's fragments stride
// across all D disks regardless of sharding, which is what the scheme's
// aggregate-bandwidth guarantee rests on (DESIGN.md §11).  The shard
// map therefore never rewrites layout arithmetic; it only answers which
// node group a global disk index lives on, and converts between global
// indices and a node's local [0, RangeSize) addressing at the explicit
// ToLocal/ToGlobal seams.  Keeping the conversion in one place is the
// fix for the single-address-space assumption audit: any shard-local
// path that needs a disk index must go through these helpers instead of
// re-deriving offsets.

#ifndef STAGGER_NODE_SHARD_MAP_H_
#define STAGGER_NODE_SHARD_MAP_H_

#include <cstdint>

#include "disk/disk.h"
#include "util/check.h"

namespace stagger {

/// \brief Contiguous balanced partition of D disks into S shards.
class ShardMap {
 public:
  ShardMap(int32_t num_disks, int32_t num_shards)
      : num_disks_(num_disks), num_shards_(num_shards) {
    STAGGER_CHECK(num_disks > 0);
    STAGGER_CHECK(num_shards > 0 && num_shards <= num_disks)
        << "cannot split " << num_disks << " disks into " << num_shards
        << " shards";
  }

  int32_t num_disks() const { return num_disks_; }
  int32_t num_shards() const { return num_shards_; }

  /// First global disk of `shard` (shard == num_shards() gives D, so
  /// RangeEnd of the last slice is well defined).
  DiskId RangeBegin(int32_t shard) const {
    STAGGER_DCHECK(shard >= 0 && shard <= num_shards_);
    return static_cast<DiskId>(static_cast<int64_t>(num_disks_) * shard /
                               num_shards_);
  }

  /// One past the last global disk of `shard`.
  DiskId RangeEnd(int32_t shard) const { return RangeBegin(shard + 1); }

  int32_t RangeSize(int32_t shard) const {
    return RangeEnd(shard) - RangeBegin(shard);
  }

  /// Shard owning global disk index `disk`.
  int32_t ShardOfDisk(DiskId disk) const {
    STAGGER_DCHECK(disk >= 0 && disk < num_disks_);
    // Inverse of RangeBegin: the largest s with D*s/S <= disk.
    const int32_t s = static_cast<int32_t>(
        (static_cast<int64_t>(disk) * num_shards_ + num_shards_ - 1) /
        num_disks_);
    // Integer flooring can land one high or low at slice boundaries;
    // nudge into the owning slice.
    if (s < num_shards_ && disk >= RangeBegin(s + 1)) return s + 1;
    if (s > 0 && disk < RangeBegin(s)) return s - 1;
    return s < num_shards_ ? s : num_shards_ - 1;
  }

  /// Global disk index -> the owning node's local index.
  DiskId ToLocal(int32_t shard, DiskId global) const {
    STAGGER_DCHECK(global >= RangeBegin(shard) && global < RangeEnd(shard))
        << "disk " << global << " is not on shard " << shard;
    return global - RangeBegin(shard);
  }

  /// A node's local disk index -> global index.
  DiskId ToGlobal(int32_t shard, DiskId local) const {
    STAGGER_DCHECK(local >= 0 && local < RangeSize(shard));
    return RangeBegin(shard) + local;
  }

 private:
  int32_t num_disks_;
  int32_t num_shards_;
};

}  // namespace stagger

#endif  // STAGGER_NODE_SHARD_MAP_H_
