// Coordinator: the thin admission front-end of the coordinator /
// storage-node split.  A display request names an object; the
// coordinator hashes it onto the ring to find its *home* shard, then
// commits a placement with the memec-style pickMin rule — the
// lexicographically least (placement load, chain position) shard among
// the object's replica chain — so a loaded home shard sheds new objects
// to its clockwise replicas instead of queueing behind them.  That
// pick-least-loaded walk is the admission retry path collapsed into one
// deterministic decision: chain position k means "the request was
// redirected k times before a node accepted it", and each redirect
// costs one modeled inter-node RPC hop on top of the mandatory
// coordinator->node hop.
//
// Everything here is a *model* knob, off by default: with ring
// placement disabled the server never consults the coordinator and
// placement falls back to the flat round-robin start-disk walk.
// Execution sharding (--shards/--threads) is intentionally a separate
// axis — it must stay bit-identical to the flat run, so it cannot be
// allowed to move object placements.

#ifndef STAGGER_NODE_COORDINATOR_H_
#define STAGGER_NODE_COORDINATOR_H_

#include <cstdint>
#include <vector>

#include "node/hash_ring.h"
#include "node/shard_map.h"
#include "storage/media_object.h"

namespace stagger {

struct CoordinatorConfig {
  int32_t num_shards = 1;
  /// Seed for the consistent-hash ring (independent of workload seeds
  /// so placement topology can be varied without moving arrivals).
  uint64_t ring_seed = 0x517a66e7ull;
  /// Replica-chain length: how many distinct shards a placement may be
  /// redirected across (1 = always the home shard).
  int32_t ring_replicas = 2;
};

/// \brief Object -> shard routing with pickMin placement and hop
/// accounting.  Single-threaded, like the admission path it serves.
class Coordinator {
 public:
  Coordinator(const CoordinatorConfig& config, int32_t num_disks);

  struct Route {
    int32_t shard = 0;
    /// Modeled inter-node hops: 1 for coordinator->home, +1 per
    /// redirect down the replica chain.
    int32_t hops = 1;
  };

  /// Ring lookup only — where the object hashes, ignoring load.
  int32_t HomeShardFor(ObjectId object) const;

  /// Commits (and memoizes) the placement decision for `object`.  The
  /// first call walks the replica chain with pickMin and charges the
  /// chosen shard one unit of placement load; later calls return the
  /// recorded route without re-charging.
  Route PlaceObject(ObjectId object);

  int32_t num_shards() const { return map_.num_shards(); }
  const ShardMap& shard_map() const { return map_; }
  const HashRing& ring() const { return ring_; }

  int64_t placements_on(int32_t shard) const {
    return placement_load_[static_cast<size_t>(shard)];
  }

  struct Metrics {
    int64_t placements = 0;  ///< distinct objects routed
    int64_t redirects = 0;   ///< placements that left their home shard
    int64_t rpc_hops = 0;    ///< total modeled hops across placements
  };
  const Metrics& metrics() const { return metrics_; }

 private:
  CoordinatorConfig config_;
  HashRing ring_;
  ShardMap map_;
  std::vector<int64_t> placement_load_;  // per-shard committed objects
  // Memoized routes, indexed by object id (dense catalog ids); packed
  // as shard * 2 + (hops - 1 > 0) would be cute and unreadable — two
  // flat vectors instead, -1 meaning "not yet placed".
  std::vector<int32_t> placed_shard_;
  std::vector<int8_t> placed_hops_;
  Metrics metrics_;
};

}  // namespace stagger

#endif  // STAGGER_NODE_COORDINATOR_H_
