#include "node/coordinator.h"

#include <algorithm>

#include "util/check.h"

namespace stagger {

Coordinator::Coordinator(const CoordinatorConfig& config, int32_t num_disks)
    : config_(config),
      ring_(config.ring_seed),
      map_(num_disks, config.num_shards),
      placement_load_(static_cast<size_t>(config.num_shards), 0) {
  STAGGER_CHECK(config.ring_replicas >= 1);
  for (int32_t s = 0; s < config.num_shards; ++s) ring_.AddShard(s);
}

int32_t Coordinator::HomeShardFor(ObjectId object) const {
  return ring_.ShardFor(static_cast<uint64_t>(static_cast<uint32_t>(object)));
}

Coordinator::Route Coordinator::PlaceObject(ObjectId object) {
  STAGGER_CHECK(object >= 0);
  const size_t idx = static_cast<size_t>(object);
  if (idx >= placed_shard_.size()) {
    placed_shard_.resize(idx + 1, -1);
    placed_hops_.resize(idx + 1, 0);
  }
  if (placed_shard_[idx] >= 0) {
    return Route{placed_shard_[idx], placed_hops_[idx]};
  }
  const std::vector<int32_t> chain = ring_.ReplicaChainFor(
      static_cast<uint64_t>(static_cast<uint32_t>(object)),
      std::min(config_.ring_replicas, map_.num_shards()));
  STAGGER_CHECK(!chain.empty());
  // pickMin: lexicographic least (placement load, chain position) —
  // ties go to the earliest chain entry, i.e. the home shard.
  int32_t best = 0;
  for (int32_t k = 1; k < static_cast<int32_t>(chain.size()); ++k) {
    if (placement_load_[static_cast<size_t>(chain[static_cast<size_t>(k)])] <
        placement_load_[static_cast<size_t>(
            chain[static_cast<size_t>(best)])]) {
      best = k;
    }
  }
  const int32_t shard = chain[static_cast<size_t>(best)];
  const int32_t hops = 1 + best;  // one hop to home, one per redirect
  ++placement_load_[static_cast<size_t>(shard)];
  placed_shard_[idx] = shard;
  placed_hops_[idx] = static_cast<int8_t>(hops);
  ++metrics_.placements;
  metrics_.redirects += best > 0 ? 1 : 0;
  metrics_.rpc_hops += hops;
  return Route{shard, hops};
}

}  // namespace stagger
