// Seeded consistent-hash ring mapping objects to storage-node shards.
//
// Each shard contributes `weight * kVnodesPerWeight` virtual nodes whose
// ring positions are pure functions of (seed, shard, vnode index) — no
// std::hash, no platform-dependent state — so the mapping is identical
// across machines and a shard's points never move when *other* shards
// join or leave.  That content addressing is what bounds remap volume:
// adding a shard steals only the key ranges its own new points cover.
//
// Lookup walks the ring clockwise from the key's hash; ReplicaChainFor
// keeps walking and collects the first `n` distinct shards, giving every
// object a deterministic failover order for admission retries.

#ifndef STAGGER_NODE_HASH_RING_H_
#define STAGGER_NODE_HASH_RING_H_

#include <cstdint>
#include <vector>

namespace stagger {

/// \brief Weight-aware consistent-hash ring over shard ids.
class HashRing {
 public:
  /// Virtual nodes per unit of weight.  With V points per shard the
  /// relative spread of arc ownership shrinks like 1/sqrt(V); 1024
  /// keeps the max/mean key load under 1.15 across seeds (pinned by
  /// HashRingProperty.BalanceBound).
  static constexpr int32_t kVnodesPerWeight = 1024;

  explicit HashRing(uint64_t seed) : seed_(seed) {}

  /// Adds `shard` with the given weight.  Re-adding an existing shard
  /// id or a non-positive weight is a caller bug.
  void AddShard(int32_t shard, int32_t weight = 1);

  /// Removes `shard` and its points; keys it owned fall through to the
  /// clockwise successors.  Unknown ids are a caller bug.
  void RemoveShard(int32_t shard);

  /// Shard owning `key` (the first point at or clockwise after the
  /// key's hash).  Requires a non-empty ring.
  int32_t ShardFor(uint64_t key) const;

  /// First `replicas` distinct shards clockwise from `key` — element 0
  /// is ShardFor(key).  Returns fewer if the ring has fewer shards.
  std::vector<int32_t> ReplicaChainFor(uint64_t key, int32_t replicas) const;

  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }
  uint64_t seed() const { return seed_; }

  /// SplitMix64 finalizer — the ring's only hash primitive.  Public so
  /// callers hash their keys the same way the ring hashes its points.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

 private:
  struct Point {
    uint64_t position;
    int32_t shard;
    bool operator<(const Point& o) const {
      return position != o.position ? position < o.position : shard < o.shard;
    }
  };

  uint64_t seed_;
  std::vector<Point> points_;   // sorted by (position, shard)
  std::vector<int32_t> shards_; // sorted shard ids currently on the ring
};

}  // namespace stagger

#endif  // STAGGER_NODE_HASH_RING_H_
