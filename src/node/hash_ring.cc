#include "node/hash_ring.h"

#include <algorithm>

#include "util/check.h"

namespace stagger {

void HashRing::AddShard(int32_t shard, int32_t weight) {
  STAGGER_CHECK(weight > 0) << "ring shard weight must be positive";
  STAGGER_CHECK(!std::binary_search(shards_.begin(), shards_.end(), shard))
      << "shard " << shard << " already on the ring";
  shards_.insert(std::upper_bound(shards_.begin(), shards_.end(), shard),
                 shard);
  const int64_t vnodes = static_cast<int64_t>(weight) * kVnodesPerWeight;
  points_.reserve(points_.size() + static_cast<size_t>(vnodes));
  // Content-addressed positions: f(seed, shard, i) only, so the points
  // of every other shard are untouched by this insertion.
  const uint64_t shard_salt =
      Mix(seed_ ^ (static_cast<uint64_t>(static_cast<uint32_t>(shard)) *
                   0xd6e8feb86659fd93ull));
  for (int64_t i = 0; i < vnodes; ++i) {
    points_.push_back(
        Point{Mix(shard_salt + static_cast<uint64_t>(i)), shard});
  }
  std::sort(points_.begin(), points_.end());
}

void HashRing::RemoveShard(int32_t shard) {
  auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  STAGGER_CHECK(it != shards_.end() && *it == shard)
      << "shard " << shard << " not on the ring";
  shards_.erase(it);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard](const Point& p) {
                                 return p.shard == shard;
                               }),
                points_.end());
}

int32_t HashRing::ShardFor(uint64_t key) const {
  STAGGER_CHECK(!points_.empty()) << "lookup on an empty ring";
  const uint64_t h = Mix(key ^ seed_);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, uint64_t pos) { return p.position < pos; });
  if (it == points_.end()) it = points_.begin();  // wrap past 2^64 - 1
  return it->shard;
}

std::vector<int32_t> HashRing::ReplicaChainFor(uint64_t key,
                                               int32_t replicas) const {
  STAGGER_CHECK(!points_.empty()) << "lookup on an empty ring";
  std::vector<int32_t> chain;
  if (replicas <= 0) return chain;
  const uint64_t h = Mix(key ^ seed_);
  size_t idx = static_cast<size_t>(
      std::lower_bound(points_.begin(), points_.end(), h,
                       [](const Point& p, uint64_t pos) {
                         return p.position < pos;
                       }) -
      points_.begin());
  const int32_t want = std::min(replicas, num_shards());
  for (size_t step = 0;
       step < points_.size() && static_cast<int32_t>(chain.size()) < want;
       ++step) {
    const int32_t s = points_[(idx + step) % points_.size()].shard;
    if (std::find(chain.begin(), chain.end(), s) == chain.end()) {
      chain.push_back(s);
    }
  }
  return chain;
}

}  // namespace stagger
