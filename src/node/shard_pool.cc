#include "node/shard_pool.h"

#include "util/check.h"

namespace stagger {

EpochPool::EpochPool(int32_t num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int32_t i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

EpochPool::~EpochPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int32_t EpochPool::RunTasks(uint64_t base, int32_t count,
                            const std::function<void(int32_t)>& fn) {
  const uint64_t bound = base + static_cast<uint64_t>(count);
  int32_t ran = 0;
  uint64_t c = cursor_.load(std::memory_order_relaxed);
  while (c < bound) {
    // CAS (not fetch_add) so a claim outside [base, bound) is
    // impossible: a stale thread cannot consume a later epoch's task.
    if (cursor_.compare_exchange_weak(c, c + 1, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      fn(static_cast<int32_t>(c - base));
      done_.fetch_add(1, std::memory_order_acq_rel);
      ++ran;
      c = cursor_.load(std::memory_order_relaxed);
    }
  }
  return ran;
}

void EpochPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    uint64_t base = 0;
    int32_t count = 0;
    const std::function<void(int32_t)>* fn = nullptr;
    {
      MutexLock lock(&mu_);
      WaitForEpochLocked(seen);
      if (shutdown_) return;
      seen = epoch_;
      base = epoch_base_;
      count = epoch_tasks_;
      fn = epoch_fn_;
    }
    // `fn` stays alive while any task in [base, base+count) is
    // unclaimed: ParallelFor cannot return before done_ reaches the
    // epoch bound, and past the bound RunTasks never dereferences.
    RunTasks(base, count, *fn);
  }
}

void EpochPool::ParallelFor(int32_t num_tasks,
                            const std::function<void(int32_t)>& fn) {
  STAGGER_CHECK(num_tasks >= 0);
  if (num_tasks == 0) return;
  if (num_tasks == 1 || workers_.empty()) {
    for (int32_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  uint64_t base = 0;
  {
    MutexLock lock(&mu_);
    // The previous epoch fully drained before its ParallelFor returned,
    // so the cursor sits exactly at the old bound == the new base.
    base = cursor_.load(std::memory_order_relaxed);
    epoch_base_ = base;
    epoch_tasks_ = num_tasks;
    epoch_fn_ = &fn;
    ++epoch_;
  }
  cv_.notify_all();
  epochs_dispatched_.fetch_add(1, std::memory_order_relaxed);
  RunTasks(base, num_tasks, fn);
  // Epoch barrier: every task has not just been claimed but *finished*
  // once the cumulative completion count reaches this epoch's bound.
  const uint64_t bound = base + static_cast<uint64_t>(num_tasks);
  while (done_.load(std::memory_order_acquire) < bound) {
    std::this_thread::yield();
  }
}

}  // namespace stagger
